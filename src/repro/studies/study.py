"""The declarative Study builder: named axes -> scenarios -> one sweep table.

A :class:`Study` declares *what* to sweep -- a scenario kind, named axes,
fixed parameters, derived metrics -- and leaves the *how* (deduplication,
caching, executors, streaming progress) to the shared
:class:`~repro.sweep.runner.SweepRunner`.  Every paper table/figure driver in
:mod:`repro.analysis.experiments` and both :mod:`repro.dse.scaling` case
studies are registered Study declarations (see :mod:`repro.studies.paper`);
user-defined sweeps use exactly the same surface::

    study = Study(
        name="llama-batch-scan",
        kind="inference",
        axes={"system": ["A100", "H100"], "batch_size": [1, 8, 32]},
        fixed={"model": "Llama2-13B", "prompt_tokens": 512},
        extract="inference_validation",
    )
    table = study.run()                       # -> SweepTable with axis columns
    spec = study.to_dict()                    # JSON-safe round-trip
    Study.from_dict(spec).run()               # ... also via `python -m repro run`

How one grid point becomes a row:

1. ``axes`` expand through :func:`~repro.sweep.runner.expand_grid` (last axis
   fastest).  An axis value that is a *mapping* spreads all of its keys at
   once -- the way to sweep linked parameters (one case = one system + its
   batch size + its reference numbers).
2. The flattened combo (``fixed`` overlaid with the spread axes) passes
   through ``rename`` and the optional ``prepare`` hook, and every key whose
   name matches a parameter of the kind's :class:`~repro.sweep.scenario.Scenario`
   factory is passed to it.  Registry strings resolve along the way: systems
   via :func:`repro.hardware.catalog.get_system`, models via the zoo,
   parallelism labels, precision/recompute names.
3. Keys that are *not* factory parameters are pass-through data: they become
   axis columns of the result table (projected/ordered by ``columns``).
4. The extractor turns each :class:`~repro.sweep.runner.SweepResult` into the
   row's metric columns (a list of records explodes one scenario into
   several rows), and the ``derive`` chain appends vectorized columns to the
   finished table.
"""

from __future__ import annotations

import dataclasses
import enum
import inspect
import json
from collections.abc import Mapping as AbcMapping
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, ReproError
from ..hardware.accelerator import AcceleratorSpec, get_accelerator
from ..hardware.catalog import get_system
from ..hardware.cluster import SystemSpec
from ..models.transformer import TransformerConfig
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig
from ..serving.faults import FaultConfig, RetryPolicy, decode_autoscaler
from ..serving.fleet import FleetConfig
from ..serving.report import ServingSLO
from ..serving.request import FleetTraceConfig, LengthDistribution, TenantTrace, TraceConfig
from ..serving.scheduler import SchedulerConfig
from ..serving.simulator import ServingConfig
from ..sweep.diskstore import DiskResultStore
from ..sweep.runner import SweepResult, SweepRunner, default_runner, expand_grid, merge_axis_records
from ..sweep.scenario import Scenario
from ..sweep.table import SweepTable
from .extractors import get_derive, get_extractor

#: Scenario-kind string -> Scenario factory classmethod.
SCENARIO_FACTORIES: Dict[str, Callable[..., Scenario]] = {
    "training": Scenario.training,
    "inference": Scenario.inference,
    "serving": Scenario.serving,
    "fleet": Scenario.fleet,
    "training_memory": Scenario.training_memory,
    "inference_memory": Scenario.inference_memory,
    "prefill_bottlenecks": Scenario.prefill_bottlenecks,
    "decode_bottlenecks": Scenario.decode_bottlenecks,
    "attention_bound": Scenario.attention_bound,
    "gemv_validation": Scenario.gemv_validation,
}

_FACTORY_PARAMS: Dict[str, Tuple[str, ...]] = {
    kind: tuple(inspect.signature(factory).parameters)
    for kind, factory in SCENARIO_FACTORIES.items()
}

#: Per kind: the factory parameters without defaults -- a spec that supplies
#: none of them through axes/fixed would fail deep inside the factory with a
#: bare ``TypeError``; :meth:`Study.validate` rejects it up front instead.
_FACTORY_REQUIRED: Dict[str, Tuple[str, ...]] = {
    kind: tuple(
        name
        for name, param in inspect.signature(factory).parameters.items()
        if param.default is inspect.Parameter.empty
        and param.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )
    for kind, factory in SCENARIO_FACTORIES.items()
}

#: One derive step: a registered name, ``(name, kwargs)``, or a callable
#: ``fn(table, run) -> SweepTable | None``.
DeriveSpec = Union[str, Tuple[str, Mapping[str, object]], Callable]

ExtractFn = Callable[[SweepResult], "Mapping[str, object] | Sequence[Mapping[str, object]]"]


@dataclasses.dataclass
class StudyRun:
    """Everything one :meth:`Study.execute` produced, for derives and debugging.

    Attributes:
        study: The executed study.
        combos: The expanded axis combinations, in grid order.
        scenarios: One scenario per combo.
        results: One sweep result per combo (input order).
        runner: The runner the evaluations went through (derives reuse it so
            follow-up scenarios share the same cache).
        table: The current result table; derives may replace it.
    """

    study: "Study"
    combos: List[Dict[str, object]]
    scenarios: List[Scenario]
    results: List[SweepResult]
    runner: SweepRunner
    table: SweepTable


@dataclasses.dataclass
class Study:
    """A declarative, serializable description of one sweep.

    Attributes:
        name: Study name (doubles as the registry key for registered studies).
        kind: Scenario kind, one of :data:`SCENARIO_FACTORIES`.
        axes: Named axes; values are sequences.  Mapping-valued entries
            spread their keys into the combo (linked parameters).
        fixed: Parameters shared by every grid point.
        rename: Flattened-key -> factory-parameter renames (e.g. a ``"gpu"``
            axis feeding the ``accelerator`` parameter while keeping its
            column name).
        columns: Projection (and order) of the axis columns; ``None`` keeps
            every axis-derived key.  May also name ``fixed`` keys to lift
            them into the table.
        extract: Metric extractor -- a registered name
            (:func:`repro.studies.extractors.register_extractor`) or a
            callable; ``None`` uses the scenario-summary default.
        derive: Chain of derive steps appended after extraction.
        filters: Predicates over the flattened combo; a combo any filter
            rejects is skipped before a scenario is built.
        prepare: Optional hook mapping the flattened combo to the final
            factory-kwarg source (compute cross-axis values, build systems).
            Code-only: studies with a ``prepare`` are not JSON-serializable.
        capture_errors: Per-study override of the runner's error capturing.
        description: One-line human description (shown by ``repro list``).
        artifact: The paper artifact this study reproduces (``"Table 1"``).
    """

    name: str
    kind: str
    axes: Mapping[str, Sequence[object]] = dataclasses.field(default_factory=dict)
    fixed: Mapping[str, object] = dataclasses.field(default_factory=dict)
    rename: Mapping[str, str] = dataclasses.field(default_factory=dict)
    columns: Optional[Sequence[str]] = None
    extract: "str | ExtractFn | None" = None
    derive: Sequence[DeriveSpec] = ()
    filters: Sequence[Callable[[Mapping[str, object]], bool]] = ()
    prepare: Optional[Callable[[Dict[str, object]], Mapping[str, object]]] = None
    capture_errors: Optional[bool] = None
    description: str = ""
    artifact: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_FACTORIES:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; available: {sorted(SCENARIO_FACTORIES)}"
            )
        self.axes = dict(self.axes)
        self.fixed = dict(self.fixed)
        self.rename = dict(self.rename)
        derive = self.derive
        if isinstance(derive, str) or callable(derive):
            derive = (derive,)  # a single bare step
        elif (
            isinstance(derive, tuple)
            and len(derive) == 2
            and isinstance(derive[0], str)
            and isinstance(derive[1], AbcMapping)
        ):
            derive = (derive,)  # a single ("name", kwargs) step
        self.derive = tuple(derive)

    # -- expansion ---------------------------------------------------------------------

    def combos(self) -> Iterator[Dict[str, object]]:
        """Expand the axes lazily (last axis fastest), applying the filters.

        A study without axes is a single evaluation: one empty combo.
        """
        raw = expand_grid(**self.axes) if self.axes else iter([{}])
        for combo in raw:
            if all(predicate(self.flattened(combo)) for predicate in self.filters):
                yield combo

    def flattened(self, combo: Mapping[str, object]) -> Dict[str, object]:
        """Overlay one combo onto ``fixed``, spreading mapping-valued axes."""
        flat: Dict[str, object] = dict(self.fixed)
        for axis, value in combo.items():
            if isinstance(value, AbcMapping):
                flat.update(value)
            else:
                flat[axis] = value
        return flat

    def scenario_for(self, combo: Mapping[str, object]) -> Scenario:
        """Build the :class:`Scenario` of one expanded combo.

        Raises :class:`~repro.errors.ConfigurationError` for keys that feed
        neither the scenario factory nor a table column: a typo in a
        hand-edited spec must fail loudly, not silently run with factory
        defaults.  Studies with a ``prepare`` hook skip the check -- the hook
        may consume any key.
        """
        source = self.flattened(combo)
        if self.rename:
            for key, target in self.rename.items():
                if key in source:
                    source[target] = source.pop(key)
        if self.prepare is not None:
            source = dict(self.prepare(source))
        else:
            self._check_unused_keys(combo, source)
        factory = SCENARIO_FACTORIES[self.kind]
        kwargs = {
            name: _decode_factory_value(name, source[name])
            for name in _FACTORY_PARAMS[self.kind]
            if name in source
        }
        return factory(**kwargs)

    def _check_unused_keys(self, combo: Mapping[str, object], source: Mapping[str, object]) -> None:
        """Reject flattened keys that neither reach the factory nor a column."""
        params = _FACTORY_PARAMS[self.kind]
        if self.columns is not None:
            column_names = set(self.columns)
        else:  # default columns: every axis-derived key
            column_names = set()
            for axis in self.axes:
                value = combo.get(axis)
                column_names.update(value if isinstance(value, AbcMapping) else (axis,))
        unused = sorted(name for name in source if name not in params and name not in column_names)
        if unused:
            raise ConfigurationError(
                f"study {self.name!r}: {unused} match neither a {self.kind!r} scenario "
                f"parameter (accepted: {sorted(params)}) nor a table column -- "
                "probably a typo in axes/fixed"
            )

    def validate(self) -> None:
        """Eagerly check every name and parameter the spec references.

        Raises structured :class:`~repro.errors.ReproError` subclasses that
        *name* the unknown extractor/derive/model/system/accelerator (or the
        missing required factory parameter) instead of letting the sweep fail
        deep inside ``run()`` with a bare ``KeyError``/``TypeError``.  Called
        automatically by :meth:`from_dict`, so hand-edited JSON specs and
        service submissions fail fast with a message fit for a 422 body.

        Studies with a ``prepare`` hook skip the parameter/value checks (the
        hook may synthesize anything); name lookups still run.
        """
        where = f"study {self.name!r}"
        if isinstance(self.extract, str):
            try:
                get_extractor(self.extract)
            except ConfigurationError as error:
                raise ConfigurationError(f"{where}: {error}") from None
        for step in self.derive:
            step_name = None
            if isinstance(step, str):
                step_name = step
            elif isinstance(step, tuple) and step and isinstance(step[0], str):
                step_name = step[0]
            if step_name is not None:
                try:
                    get_derive(step_name)
                except ConfigurationError as error:
                    raise ConfigurationError(f"{where}: {error}") from None
        if self.prepare is not None:
            return
        supplied = set(self.fixed)
        for axis, values in self.axes.items():
            supplied.add(axis)
            for value in values:
                if isinstance(value, AbcMapping):
                    supplied.update(value)
        supplied = {self.rename.get(key, key) for key in supplied}
        missing = [name for name in _FACTORY_REQUIRED[self.kind] if name not in supplied]
        if missing:
            raise ConfigurationError(
                f"{where}: the {self.kind!r} scenario requires {missing} but neither "
                "axes nor fixed supplies them"
            )
        self._validate_registry_names()

    def _validate_registry_names(self) -> None:
        """Resolve model/system/accelerator *string* values against the registries."""
        resolvers: Dict[str, Callable[[str], object]] = {
            "model": get_model,
            "system": get_system,
            "accelerator": get_accelerator,
        }

        def check(key: str, value: object) -> None:
            resolver = resolvers.get(self.rename.get(key, key))
            if resolver is None or not isinstance(value, str):
                return
            try:
                resolver(value)
            except ReproError as error:
                raise type(error)(f"study {self.name!r}: {error}") from None

        for key, value in self.fixed.items():
            check(key, value)
        for axis, values in self.axes.items():
            for value in values:
                if isinstance(value, AbcMapping):
                    for key, item in value.items():
                        check(key, item)
                else:
                    check(axis, value)

    def scenarios(self) -> Iterator[Scenario]:
        """Lazily yield the scenario of every combo, in grid order."""
        for combo in self.combos():
            yield self.scenario_for(combo)

    def axis_record(self, combo: Mapping[str, object]) -> Dict[str, object]:
        """The axis columns of one combo (before :func:`axis_label` rendering)."""
        record: Dict[str, object] = {}
        for axis in self.axes:
            value = combo[axis]
            if isinstance(value, AbcMapping):
                record.update(value)
            else:
                record[axis] = value
        if self.columns is None:
            return record
        source = {**self.fixed, **record}
        missing = [name for name in self.columns if name not in source]
        if missing:
            raise ConfigurationError(
                f"study {self.name!r}: columns {missing} appear in neither the axes nor fixed"
            )
        return {name: source[name] for name in self.columns}

    # -- execution ---------------------------------------------------------------------

    def execute(
        self,
        runner: Optional[SweepRunner] = None,
        executor: Optional[str] = None,
        on_result: Optional[Callable[[SweepResult], None]] = None,
        disk_cache: "DiskResultStore | str | bool | None" = None,
    ) -> StudyRun:
        """Run the study and return the full :class:`StudyRun` context.

        Args:
            runner: Runner to evaluate through; defaults to the process-wide
                shared runner (or a fresh one when ``executor`` or
                ``disk_cache`` is given).
            executor: Shorthand for ``SweepRunner(executor=...)`` when no
                runner is passed.
            on_result: Streaming progress callback, forwarded to
                :meth:`SweepRunner.run` (fires once per scenario as its
                result becomes available).
            disk_cache: Persistent result store for the fresh runner (a
                :class:`~repro.sweep.diskstore.DiskResultStore`, a cache-root
                path, or ``True`` for the default location); only meaningful
                when no ``runner`` is passed.
        """
        if runner is None:
            if executor is not None or disk_cache is not None:
                runner = SweepRunner(executor=executor or "serial", disk_cache=disk_cache)
            else:
                runner = default_runner()
        combos = list(self.combos())
        scenarios = [self.scenario_for(combo) for combo in combos]
        results = runner.run(scenarios, capture_errors=self.capture_errors, on_result=on_result)
        extract = _tolerant_extract(self._extract_fn(), results)
        axis_records = [self.axis_record(combo) for combo in combos]
        table = SweepTable.from_records(merge_axis_records(axis_records, results, extract))
        run = StudyRun(
            study=self, combos=combos, scenarios=scenarios, results=results, runner=runner, table=table
        )
        for step in self.derive:
            fn, kwargs = _resolve_derive(step)
            replacement = fn(run.table, run, **kwargs)
            if replacement is not None:
                run.table = replacement
        return run

    def run(
        self,
        runner: Optional[SweepRunner] = None,
        executor: Optional[str] = None,
        on_result: Optional[Callable[[SweepResult], None]] = None,
        disk_cache: "DiskResultStore | str | bool | None" = None,
    ) -> SweepTable:
        """Run the study and return its result table (see :meth:`execute`)."""
        return self.execute(
            runner=runner, executor=executor, on_result=on_result, disk_cache=disk_cache
        ).table

    def _extract_fn(self) -> ExtractFn:
        if self.extract is None:
            return lambda result: {"error": result.error}
        if callable(self.extract):
            return self.extract
        return get_extractor(self.extract)

    # -- serialization -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe spec of this study (inverse of :meth:`from_dict`).

        Raises :class:`~repro.errors.ConfigurationError` when the study holds
        code-only parts (callable extract/derive, ``filters``, ``prepare``)
        or values that no registry resolves by name.
        """
        if self.prepare is not None or self.filters:
            raise ConfigurationError(
                f"study {self.name!r} uses code-only hooks (prepare/filters) and cannot be "
                "serialized; run it from Python or express the hook as axes"
            )
        if self.extract is not None and not isinstance(self.extract, str):
            raise ConfigurationError(
                f"study {self.name!r} uses a callable extractor; register it by name "
                "(repro.studies.register_extractor) to serialize the study"
            )
        derive: List[object] = []
        for step in self.derive:
            if callable(step):
                raise ConfigurationError(
                    f"study {self.name!r} uses a callable derive step; register it by name "
                    "(repro.studies.register_derive) to serialize the study"
                )
            if isinstance(step, str):
                derive.append(step)
            else:
                name, kwargs = step
                derive.append([name, _encode_value(dict(kwargs), where=f"derive {name!r}")])
        where = f"study {self.name!r}"
        spec: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "axes": {axis: _encode_value(list(values), where=where) for axis, values in self.axes.items()},
            "fixed": _encode_value(dict(self.fixed), where=where),
        }
        if self.rename:
            spec["rename"] = dict(self.rename)
        if self.columns is not None:
            spec["columns"] = list(self.columns)
        if self.extract is not None:
            spec["extract"] = self.extract
        if derive:
            spec["derive"] = derive
        if self.capture_errors is not None:
            spec["capture_errors"] = self.capture_errors
        if self.description:
            spec["description"] = self.description
        if self.artifact:
            spec["artifact"] = self.artifact
        return spec

    def to_json(self, **kwargs: object) -> str:
        """Serialize :meth:`to_dict` to a JSON string."""
        kwargs.setdefault("indent", 1)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "Study":
        """Rebuild a study from a :meth:`to_dict` spec (or its ``{"study": ...}`` wrapper)."""
        if "study" in spec and isinstance(spec["study"], AbcMapping):
            spec = spec["study"]  # tolerate a wrapped spec document
        unknown = set(spec) - {
            "name", "kind", "axes", "fixed", "rename", "columns", "extract",
            "derive", "capture_errors", "description", "artifact",
        }
        if unknown:
            raise ConfigurationError(f"unknown study spec fields: {sorted(unknown)}")
        derive: List[DeriveSpec] = []
        for step in spec.get("derive", ()):  # type: ignore[union-attr]
            if isinstance(step, str):
                derive.append(step)
            elif isinstance(step, (list, tuple)) and len(step) == 2:
                derive.append((str(step[0]), dict(step[1])))
            else:
                raise ConfigurationError(f"derive steps must be 'name' or ['name', kwargs]; got {step!r}")
        try:
            name = spec["name"]
            kind = spec["kind"]
        except KeyError as missing:
            raise ConfigurationError(f"study spec is missing the {missing} field") from None
        study = cls(
            name=str(name),
            kind=str(kind),
            axes={axis: list(values) for axis, values in dict(spec.get("axes", {})).items()},
            fixed=dict(spec.get("fixed", {})),
            rename=dict(spec.get("rename", {})),
            columns=list(spec["columns"]) if spec.get("columns") is not None else None,
            extract=spec.get("extract"),
            derive=tuple(derive),
            capture_errors=spec.get("capture_errors"),
            description=str(spec.get("description", "")),
            artifact=str(spec.get("artifact", "")),
        )
        study.validate()
        return study

    @classmethod
    def from_json(cls, text: str) -> "Study":
        """Rebuild a study from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Spec value encoding/decoding: rich objects <-> registry names / plain dicts.
# ---------------------------------------------------------------------------

def _encode_value(value: object, where: str) -> object:
    """Encode one axis/fixed value into a JSON-safe form.

    Registry-resolvable objects collapse to their catalog name (checked to
    round-trip); configuration dataclasses expand to plain dicts; scalars
    pass through.  Anything else raises with a pointer to the registries.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_encode_value(item, where) for item in value]
    if isinstance(value, AbcMapping):
        return {str(key): _encode_value(item, where) for key, item in value.items()}
    if isinstance(value, TransformerConfig):
        if _lookup(get_model, value.name) != value:
            raise ConfigurationError(
                f"{where}: model {value.name!r} is not in the zoo; register_model() it "
                "so the spec can resolve it by name"
            )
        return value.name
    if isinstance(value, SystemSpec):
        if _lookup(get_system, value.name) != value:
            raise ConfigurationError(
                f"{where}: system {value.name!r} does not resolve from the catalog; "
                "register_system() it so the spec can resolve it by name"
            )
        return value.name
    if isinstance(value, AcceleratorSpec):
        if _lookup(get_accelerator, value.name) != value:
            raise ConfigurationError(
                f"{where}: accelerator {value.name!r} is not in the catalog"
            )
        return value.name
    if isinstance(value, ParallelismConfig):
        return dataclasses.asdict(value)
    if isinstance(value, (ServingConfig, FleetConfig)):
        return dataclasses.asdict(value)
    if isinstance(
        value,
        (TraceConfig, FleetTraceConfig, TenantTrace, SchedulerConfig, ServingSLO, LengthDistribution),
    ):
        return dataclasses.asdict(value)
    if isinstance(value, enum.Enum):  # Precision, RecomputeStrategy, ...
        encoded = value.value
        if isinstance(encoded, (str, int, float)):
            return encoded
    raise ConfigurationError(
        f"{where}: cannot serialize {type(value).__name__} values; use registry names "
        "(models, systems) or plain scalars in axes/fixed"
    )


def _lookup(getter: Callable[[str], object], name: str) -> Optional[object]:
    """Registry lookup that reports "unresolvable" as None instead of raising."""
    try:
        return getter(name)
    except ConfigurationError:
        return None


def _decode_factory_value(name: str, value: object) -> object:
    """Decode a spec value for one factory parameter.

    Strings stay strings (the scenario factories resolve catalog names and
    labels themselves); mappings rebuild the structured configs that JSON
    flattened.
    """
    if not isinstance(value, AbcMapping):
        return value
    if name == "parallelism":
        return ParallelismConfig(**value)
    if name == "serving":
        return _decode_serving(value)
    if name == "fleet":
        return _decode_fleet(value)
    return value


def _decode_trace(spec: Mapping[str, object]) -> "TraceConfig | FleetTraceConfig":
    """Rebuild a trace config (single- or multi-tenant) from its asdict form."""
    if "tenants" in spec:
        tenants = []
        for entry in spec["tenants"]:
            entry = dict(entry)
            entry["trace"] = _decode_trace(entry.get("trace", {}))
            if isinstance(entry.get("diurnal"), (list, tuple)):
                entry["diurnal"] = tuple(entry["diurnal"])
            tenants.append(TenantTrace(**entry))
        return FleetTraceConfig(tenants=tuple(tenants))
    trace = dict(spec)
    for lengths in ("prompt_lengths", "output_lengths"):
        if isinstance(trace.get(lengths), AbcMapping):
            trace[lengths] = LengthDistribution(**trace[lengths])
    return TraceConfig(**trace)


def _decode_serving(spec: Mapping[str, object]) -> ServingConfig:
    """Rebuild a :class:`ServingConfig` from its ``dataclasses.asdict`` form."""
    return ServingConfig(
        trace=_decode_trace(dict(spec.get("trace", {}))),
        scheduler=SchedulerConfig(**dict(spec.get("scheduler", {}))),
        slo=ServingSLO(**dict(spec.get("slo", {}))),
        include_lm_head=bool(spec.get("include_lm_head", True)),
    )


def _decode_fleet(spec: Mapping[str, object]) -> FleetConfig:
    """Rebuild a :class:`FleetConfig` from its ``dataclasses.asdict`` form."""
    spec = dict(spec)
    faults_spec = spec.get("faults")
    retry_spec = spec.get("retry")
    scaler_spec = spec.get("autoscaler")
    return FleetConfig(
        trace=_decode_trace(dict(spec.get("trace", {}))),
        num_replicas=int(spec.get("num_replicas", 2)),
        router=str(spec.get("router", "round_robin")),
        scheduler=SchedulerConfig(**dict(spec.get("scheduler", {}))),
        slo=ServingSLO(**dict(spec.get("slo", {}))),
        include_lm_head=bool(spec.get("include_lm_head", True)),
        max_epoch_steps=int(spec.get("max_epoch_steps", FleetConfig.__dataclass_fields__["max_epoch_steps"].default)),
        arrival_probe_steps=int(
            spec.get("arrival_probe_steps", FleetConfig.__dataclass_fields__["arrival_probe_steps"].default)
        ),
        faults=FaultConfig(**dict(faults_spec)) if isinstance(faults_spec, AbcMapping) else None,
        retry=RetryPolicy(**dict(retry_spec)) if isinstance(retry_spec, AbcMapping) else RetryPolicy(),
        autoscaler=decode_autoscaler(dict(scaler_spec)) if isinstance(scaler_spec, AbcMapping) else None,
    )


def _tolerant_extract(extract: ExtractFn, results: Sequence[SweepResult]) -> ExtractFn:
    """Make ``extract`` survive error-captured results it does not handle itself.

    Error-aware extractors (those that inspect ``result.ok``, like the
    serving frontier's) run unchanged.  For extractors that assume a report
    and would crash on a captured failure, the failed row instead carries
    the metric columns of the successful rows null-filled plus the ``error``
    message -- and in that case every row gains the ``error`` column, so the
    table schema stays rectangular.  Extraction errors on *successful*
    results still propagate: those are extractor bugs, not infeasible rows.
    """
    records: List[object] = []
    fell_back = False
    for result in results:
        if result.ok:
            records.append(extract(result))
            continue
        try:
            records.append(extract(result))
        except Exception:
            records.append(None)
            fell_back = True
    if fell_back:
        first_ok = next((record for record in records if record is not None), {})
        template = first_ok if isinstance(first_ok, AbcMapping) else (first_ok[0] if first_ok else {})
        metric_names = [name for name in template if name != "error"]
        for index, (result, record) in enumerate(zip(results, records)):
            if record is None:
                records[index] = {**{name: None for name in metric_names}, "error": result.error}
            elif isinstance(record, AbcMapping):
                records[index] = {**record, "error": record.get("error", result.error)}
            else:
                records[index] = [{**entry, "error": entry.get("error", result.error)} for entry in record]
    prepared = iter(records)

    def consume(result: SweepResult) -> "Mapping[str, object] | Sequence[Mapping[str, object]]":
        return next(prepared)

    return consume


def _resolve_derive(step: DeriveSpec) -> Tuple[Callable, Dict[str, object]]:
    if callable(step):
        return step, {}
    if isinstance(step, str):
        return get_derive(step), {}
    name, kwargs = step
    return get_derive(name), dict(kwargs)
