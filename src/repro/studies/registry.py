"""The study registry: every paper table/figure (and user study) by name.

Symmetric to the model zoo and the hardware catalog: a **study builder** is a
callable returning a fresh :class:`~repro.studies.study.Study`; registering
it makes the study discoverable by name -- from Python
(:func:`get_study`), from the CLI (``python -m repro list`` / ``run``), and
from JSON specs.  Builders take keyword arguments so the analysis-layer shims
can parameterize them while the registry's defaults reproduce the paper::

    @register_study(artifact="Table 1", description="training-time validation")
    def table1_training_validation(rows=None):
        return Study(...)

    get_study("table1_training_validation").run()
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from .study import Study

StudyBuilder = Callable[..., Study]


@dataclasses.dataclass(frozen=True)
class StudyEntry:
    """One registered study: its builder plus the listing metadata."""

    name: str
    builder: StudyBuilder
    artifact: str = ""
    description: str = ""


_REGISTRY: Dict[str, StudyEntry] = {}


def register_study(
    builder: Optional[StudyBuilder] = None,
    *,
    name: Optional[str] = None,
    artifact: str = "",
    description: str = "",
) -> Callable:
    """Register a study builder (usable bare or with keyword arguments).

    Args:
        builder: The builder when used as ``@register_study`` directly.
        name: Registry name; defaults to the builder's ``__name__``.
        artifact: Paper artifact the study reproduces (``"Fig. 5"``).
        description: One-line summary shown by ``repro list``.
    """

    def decorate(fn: StudyBuilder) -> StudyBuilder:
        key = name or fn.__name__
        _REGISTRY[key] = StudyEntry(name=key, builder=fn, artifact=artifact, description=description)
        return fn

    return decorate(builder) if builder is not None else decorate


def unregister_study(name: str) -> None:
    """Remove a registered study (no-op if absent); mainly for tests."""
    _REGISTRY.pop(name, None)


def get_study(name: str, **kwargs: object) -> Study:
    """Build the registered study ``name`` (keyword arguments reach the builder).

    A scalar passed for a parameter whose default is a list/tuple is wrapped
    into a singleton list, so ``get_study("table4_gemm_bottlenecks",
    gpus="A100")`` -- and the CLI's ``-p gpus=A100`` -- sweep one GPU instead
    of exploding the string into characters.
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown study {name!r}; registered: {[e.name for e in list_studies()]}"
        ) from None
    parameters = inspect.signature(entry.builder).parameters
    for key, value in kwargs.items():
        parameter = parameters.get(key)
        if (
            parameter is not None
            and isinstance(parameter.default, (list, tuple))
            and isinstance(value, (str, int, float, bool))
        ):
            kwargs[key] = [value]
    return entry.builder(**kwargs)


def list_studies() -> List[StudyEntry]:
    """Every registered study, sorted by name."""
    return sorted(_REGISTRY.values(), key=lambda entry: entry.name)
