"""Declarative studies: registry-backed sweep declarations with one front door.

Public surface:

* :class:`~repro.studies.study.Study` -- declares named axes, fixed
  parameters, a scenario kind, metric extractors, and derived columns;
  expands lazily to scenarios and executes through a shared
  :class:`~repro.sweep.runner.SweepRunner` into a
  :class:`~repro.sweep.table.SweepTable` with axis columns attached.
* :func:`~repro.studies.registry.register_study` /
  :func:`~repro.studies.registry.get_study` /
  :func:`~repro.studies.registry.list_studies` -- the study registry; every
  paper table/figure is registered here (:mod:`repro.studies.paper`).
* :func:`~repro.studies.extractors.register_extractor` /
  :func:`~repro.studies.extractors.register_derive` -- the named metric
  vocabulary JSON specs resolve against.
* ``Study.to_dict()`` / ``Study.from_dict()`` -- the JSON spec round-trip
  behind ``python -m repro run <spec.json>``.
"""

from .extractors import (
    get_derive,
    get_extractor,
    list_derives,
    list_extractors,
    register_derive,
    register_extractor,
)
from .registry import StudyEntry, get_study, list_studies, register_study, unregister_study
from .study import SCENARIO_FACTORIES, Study, StudyRun

from . import paper  # noqa: F401  (importing registers the paper studies)

__all__ = [
    "SCENARIO_FACTORIES",
    "Study",
    "StudyEntry",
    "StudyRun",
    "get_derive",
    "get_extractor",
    "get_study",
    "list_derives",
    "list_extractors",
    "list_studies",
    "paper",
    "register_derive",
    "register_extractor",
    "register_study",
    "unregister_study",
]
