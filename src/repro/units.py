"""Unit constants and conversion helpers used across the performance model.

The framework works internally in SI base units: seconds for time, bytes for
data volume, FLOP/s for compute throughput, and bytes/second for bandwidth.
The constants below make configuration files and hardware catalogs readable
(``1.9 * TBPS`` instead of ``1.9e12``) and the helpers convert results into
the units the paper reports (milliseconds, microseconds, gigabytes).
"""

from __future__ import annotations

# Data volume ---------------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB
TB = 1_000 * GB

# Throughput ----------------------------------------------------------------
KFLOPS = 1e3
MFLOPS = 1e6
GFLOPS = 1e9
TFLOPS = 1e12
PFLOPS = 1e15

# Bandwidth -----------------------------------------------------------------
GBPS = 1e9
TBPS = 1e12

# Time ----------------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

# Frequency -----------------------------------------------------------------
MHZ = 1e6
GHZ = 1e9

# Power / area --------------------------------------------------------------
WATT = 1.0
MILLIWATT = 1e-3
MM2 = 1.0  # the framework tracks silicon area in mm^2


def to_milliseconds(seconds: float) -> float:
    """Convert a duration in seconds to milliseconds."""
    return seconds / MILLISECOND


def to_microseconds(seconds: float) -> float:
    """Convert a duration in seconds to microseconds."""
    return seconds / MICROSECOND


def to_gigabytes(num_bytes: float) -> float:
    """Convert a byte count to decimal gigabytes (1 GB = 1e9 bytes)."""
    return num_bytes / GB


def to_gibibytes(num_bytes: float) -> float:
    """Convert a byte count to binary gibibytes (1 GiB = 2**30 bytes)."""
    return num_bytes / GIB


def to_teraflops(flops_per_second: float) -> float:
    """Convert a throughput in FLOP/s to TFLOP/s."""
    return flops_per_second / TFLOPS


def from_milliseconds(milliseconds: float) -> float:
    """Convert a duration in milliseconds to seconds."""
    return milliseconds * MILLISECOND
