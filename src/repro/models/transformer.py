"""Decoder-only transformer model configuration.

A :class:`TransformerConfig` holds the architectural hyper-parameters of a
GPT/Llama-style decoder and derives the quantities the performance model
needs: parameter counts (total and per layer), forward/backward FLOP counts,
and the dimensions of every GEMM in the multi-head-attention (MHA) and
multi-layer-perceptron (MLP) blocks.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional

from ..errors import ConfigurationError


class MLPActivation(enum.Enum):
    """Type of the MLP non-linearity, which determines the MLP weight shape."""

    GELU = "gelu"        # two matrices: h -> ffn, ffn -> h
    SWIGLU = "swiglu"    # three matrices: gate + up (h -> ffn) and down (ffn -> h)


@dataclasses.dataclass(frozen=True)
class TransformerConfig:
    """Architecture of a decoder-only transformer.

    Attributes:
        name: Model name (e.g. ``"GPT-175B"``).
        num_layers: Number of transformer layers.
        hidden_size: Model (embedding) dimension ``h``.
        num_heads: Number of attention heads.
        num_kv_heads: Number of key/value heads (``< num_heads`` for GQA).
        ffn_hidden_size: Hidden dimension of the MLP block; defaults to ``4h``.
        vocab_size: Vocabulary size used by the embedding / LM head.
        max_seq_len: Maximum (training) sequence length.
        mlp_activation: GELU (GPT style) or SwiGLU (Llama style).
        tie_embeddings: Whether the input embedding and LM head share weights.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: Optional[int] = None
    ffn_hidden_size: Optional[int] = None
    vocab_size: int = 51200
    max_seq_len: int = 2048
    mlp_activation: MLPActivation = MLPActivation.GELU
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.num_layers < 1 or self.hidden_size < 1 or self.num_heads < 1:
            raise ConfigurationError(f"{self.name}: layers, hidden size, and heads must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"{self.name}: hidden_size ({self.hidden_size}) must be divisible by num_heads ({self.num_heads})"
            )
        if self.num_kv_heads is None:
            object.__setattr__(self, "num_kv_heads", self.num_heads)
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigurationError(
                f"{self.name}: num_heads must be a multiple of num_kv_heads for grouped-query attention"
            )
        if self.ffn_hidden_size is None:
            object.__setattr__(self, "ffn_hidden_size", 4 * self.hidden_size)
        if self.vocab_size < 1 or self.max_seq_len < 1:
            raise ConfigurationError(f"{self.name}: vocab_size and max_seq_len must be positive")

    # -- dimensions ----------------------------------------------------------

    @property
    def head_dim(self) -> int:
        """Per-head dimension ``d = h / num_heads``."""
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden_size(self) -> int:
        """Total width of the key/value projections (``h`` unless GQA)."""
        return self.num_kv_heads * self.head_dim

    @property
    def num_mlp_matrices(self) -> int:
        """Number of weight matrices in the MLP block (2 for GELU, 3 for SwiGLU)."""
        return 3 if self.mlp_activation is MLPActivation.SWIGLU else 2

    # -- parameter counts ----------------------------------------------------

    @property
    def attention_parameters_per_layer(self) -> int:
        """Weights of the Q/K/V projections and the output projection of one layer."""
        q_params = self.hidden_size * self.hidden_size
        kv_params = 2 * self.hidden_size * self.kv_hidden_size
        out_params = self.hidden_size * self.hidden_size
        return q_params + kv_params + out_params

    @property
    def mlp_parameters_per_layer(self) -> int:
        """Weights of the MLP block of one layer."""
        if self.mlp_activation is MLPActivation.SWIGLU:
            return 3 * self.hidden_size * self.ffn_hidden_size
        return 2 * self.hidden_size * self.ffn_hidden_size

    @property
    def norm_parameters_per_layer(self) -> int:
        """LayerNorm/RMSNorm gains and biases of one layer (two norms per layer)."""
        return 4 * self.hidden_size

    @property
    def parameters_per_layer(self) -> int:
        """Total weights of one transformer layer."""
        return (
            self.attention_parameters_per_layer
            + self.mlp_parameters_per_layer
            + self.norm_parameters_per_layer
        )

    @property
    def embedding_parameters(self) -> int:
        """Input-embedding (and, if untied, output-head) weights."""
        embedding = self.vocab_size * self.hidden_size
        return embedding if self.tie_embeddings else 2 * embedding

    @property
    def num_parameters(self) -> int:
        """Total parameter count of the model."""
        return self.num_layers * self.parameters_per_layer + self.embedding_parameters

    # -- FLOP counts -----------------------------------------------------------

    def flops_per_token_forward(self, seq_len: Optional[int] = None) -> float:
        """Forward-pass FLOPs to process one token at context length ``seq_len``.

        Uses the standard decomposition: 2 FLOPs per multiply-accumulate for
        every weight, plus the attention score/context GEMMs which scale with
        the sequence length.
        """
        seq = self.max_seq_len if seq_len is None else seq_len
        matmul_flops = 2.0 * (self.attention_parameters_per_layer + self.mlp_parameters_per_layer)
        attention_flops = 2.0 * 2.0 * seq * self.hidden_size  # QK^T and PV, per token
        per_layer = matmul_flops + attention_flops
        head_flops = 2.0 * self.vocab_size * self.hidden_size
        return self.num_layers * per_layer + head_flops

    def flops_per_sequence_forward(self, seq_len: Optional[int] = None) -> float:
        """Forward-pass FLOPs for one full sequence of length ``seq_len``."""
        seq = self.max_seq_len if seq_len is None else seq_len
        matmul_flops = 2.0 * seq * (self.attention_parameters_per_layer + self.mlp_parameters_per_layer)
        attention_flops = 2.0 * 2.0 * seq * seq * self.hidden_size
        per_layer = matmul_flops + attention_flops
        head_flops = 2.0 * seq * self.vocab_size * self.hidden_size
        return self.num_layers * per_layer + head_flops

    def flops_per_sequence_training(self, seq_len: Optional[int] = None) -> float:
        """Training-step FLOPs (forward + backward ~ 3x forward) for one sequence."""
        return 3.0 * self.flops_per_sequence_forward(seq_len)

    # -- misc ------------------------------------------------------------------

    def scaled(self, name: str, layer_factor: float = 1.0, hidden_factor: float = 1.0) -> "TransformerConfig":
        """Return a scaled variant of this architecture (for what-if studies)."""
        hidden = int(round(self.hidden_size * hidden_factor / self.num_heads)) * self.num_heads
        return dataclasses.replace(
            self,
            name=name,
            num_layers=max(1, int(round(self.num_layers * layer_factor))),
            hidden_size=max(self.num_heads, hidden),
            ffn_hidden_size=None,
        )

    def summary(self) -> Dict[str, object]:
        """Flat summary for reports."""
        return {
            "name": self.name,
            "layers": self.num_layers,
            "hidden_size": self.hidden_size,
            "heads": self.num_heads,
            "kv_heads": self.num_kv_heads,
            "ffn_hidden": self.ffn_hidden_size,
            "vocab": self.vocab_size,
            "parameters": self.num_parameters,
        }
