"""Model zoo: the GPT and Llama-2 configurations used throughout the paper.

The GPT configurations follow the Megatron-LM scaling-study table (Narayanan
et al. 2021 / Korthikanti et al. 2023), which is what the paper's Table 1
validates against.  The Llama-2 configurations follow the public model cards
and are used by the inference validation (Table 2) and case studies.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import UnknownModelError
from .transformer import MLPActivation, TransformerConfig

_ZOO: Dict[str, TransformerConfig] = {}


def _register(config: TransformerConfig) -> TransformerConfig:
    _ZOO[config.name.upper()] = config
    return config


# --- GPT family (Megatron scaling study configurations) ----------------------

GPT_7B = _register(
    TransformerConfig(
        name="GPT-7B",
        num_layers=32,
        hidden_size=4096,
        num_heads=32,
        vocab_size=51200,
        max_seq_len=2048,
    )
)

GPT_22B = _register(
    TransformerConfig(
        name="GPT-22B",
        num_layers=48,
        hidden_size=6144,
        num_heads=64,
        vocab_size=51200,
        max_seq_len=2048,
    )
)

GPT_175B = _register(
    TransformerConfig(
        name="GPT-175B",
        num_layers=96,
        hidden_size=12288,
        num_heads=96,
        vocab_size=51200,
        max_seq_len=2048,
    )
)

GPT_310B = _register(
    TransformerConfig(
        name="GPT-310B",
        num_layers=96,
        hidden_size=16384,
        num_heads=128,
        vocab_size=51200,
        max_seq_len=2048,
    )
)

GPT_530B = _register(
    TransformerConfig(
        name="GPT-530B",
        num_layers=105,
        hidden_size=20480,
        num_heads=128,
        vocab_size=51200,
        max_seq_len=2048,
    )
)

GPT_1T = _register(
    TransformerConfig(
        name="GPT-1008B",
        num_layers=128,
        hidden_size=25600,
        num_heads=160,
        vocab_size=51200,
        max_seq_len=2048,
    )
)

# --- Llama-2 family ----------------------------------------------------------

LLAMA2_7B = _register(
    TransformerConfig(
        name="Llama2-7B",
        num_layers=32,
        hidden_size=4096,
        num_heads=32,
        ffn_hidden_size=11008,
        vocab_size=32000,
        max_seq_len=4096,
        mlp_activation=MLPActivation.SWIGLU,
        tie_embeddings=False,
    )
)

LLAMA2_13B = _register(
    TransformerConfig(
        name="Llama2-13B",
        num_layers=40,
        hidden_size=5120,
        num_heads=40,
        ffn_hidden_size=13824,
        vocab_size=32000,
        max_seq_len=4096,
        mlp_activation=MLPActivation.SWIGLU,
        tie_embeddings=False,
    )
)

LLAMA2_70B = _register(
    TransformerConfig(
        name="Llama2-70B",
        num_layers=80,
        hidden_size=8192,
        num_heads=64,
        num_kv_heads=8,
        ffn_hidden_size=28672,
        vocab_size=32000,
        max_seq_len=4096,
        mlp_activation=MLPActivation.SWIGLU,
        tie_embeddings=False,
    )
)

# Aliases used by the paper's tables.
_ALIASES = {
    "GPT-1T": "GPT-1008B",
    "GPT3-175B": "GPT-175B",
    "LLAMA-2-7B": "LLAMA2-7B",
    "LLAMA-2-13B": "LLAMA2-13B",
    "LLAMA-2-70B": "LLAMA2-70B",
}


def get_model(name: str) -> TransformerConfig:
    """Look up a model configuration by (case-insensitive) name or alias."""
    key = name.strip().upper()
    key = _ALIASES.get(key, key)
    if key in _ZOO:
        return _ZOO[key]
    raise UnknownModelError(f"unknown model {name!r}; available: {sorted(_ZOO)}")


def list_models() -> List[str]:
    """Names of all registered models."""
    return sorted(config.name for config in _ZOO.values())


def register_model(config: TransformerConfig) -> TransformerConfig:
    """Add a custom model configuration to the zoo (returns the config)."""
    return _register(config)
