"""LLM model configurations and the model zoo."""

from .transformer import MLPActivation, TransformerConfig
from .zoo import (
    GPT_7B,
    GPT_22B,
    GPT_175B,
    GPT_310B,
    GPT_530B,
    GPT_1T,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    get_model,
    list_models,
    register_model,
)

__all__ = [
    "MLPActivation",
    "TransformerConfig",
    "GPT_7B",
    "GPT_22B",
    "GPT_175B",
    "GPT_310B",
    "GPT_530B",
    "GPT_1T",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "get_model",
    "list_models",
    "register_model",
]
