"""Plain-text table rendering for benchmark and example output.

The benchmark harness prints the regenerated tables/series in a layout close
to the paper's, so a reader can compare the reproduction against the
published numbers at a glance without any plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object, precision: int = 2) -> str:
    """Format a single cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(column) for column in columns]
    body: List[List[str]] = []
    for row in rows:
        body.append([format_value(row.get(column, ""), precision=precision) for column in columns])
    widths = [max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_breakdown(breakdown: Mapping[str, float], title: Optional[str] = None, unit: str = "s") -> str:
    """Render a one-level breakdown dict (e.g. compute/communication/other)."""
    lines = [title] if title else []
    total = breakdown.get("total", sum(v for k, v in breakdown.items() if k != "total"))
    for key, value in breakdown.items():
        if key == "total":
            continue
        share = (value / total * 100.0) if total else 0.0
        lines.append(f"  {key:<16s} {format_value(value)} {unit}  ({share:5.1f}%)")
    lines.append(f"  {'total':<16s} {format_value(total)} {unit}")
    return "\n".join(lines)


def summarize_errors(errors_percent: Iterable[float]) -> Dict[str, float]:
    """Mean / max absolute error summary of a list of signed percentage errors."""
    values = [abs(e) for e in errors_percent]
    if not values:
        return {"mean_abs_error_%": 0.0, "max_abs_error_%": 0.0}
    return {
        "mean_abs_error_%": sum(values) / len(values),
        "max_abs_error_%": max(values),
    }
