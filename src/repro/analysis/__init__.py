"""Experiment drivers (one per paper table/figure) and text-table formatting."""

from .experiments import (
    fig3_gemv_validation,
    fig4_memory_breakdown,
    fig5_gpu_generation_scaling,
    fig6_technology_node_scaling,
    fig7_bound_breakdown,
    fig8_inference_boundedness,
    fig9_memory_technology_scaling,
    table1_training_validation,
    table2_inference_validation,
    table4_gemm_bottlenecks,
)
from .formatting import format_value, render_breakdown, render_table, summarize_errors

__all__ = [
    "fig3_gemv_validation",
    "fig4_memory_breakdown",
    "fig5_gpu_generation_scaling",
    "fig6_technology_node_scaling",
    "fig7_bound_breakdown",
    "fig8_inference_boundedness",
    "fig9_memory_technology_scaling",
    "format_value",
    "render_breakdown",
    "render_table",
    "summarize_errors",
    "table1_training_validation",
    "table2_inference_validation",
    "table4_gemm_bottlenecks",
]
