"""One function per paper table / figure.

Every function reproduces the data behind one of the paper's evaluation
artifacts and returns plain Python structures (lists of dicts) that the
benchmark harness prints and asserts on.  The mapping to the paper is:

========================================  =======================================
:func:`table1_training_validation`        Table 1 (training-time validation)
:func:`table2_inference_validation`       Table 2 (inference-latency validation)
:func:`table4_gemm_bottlenecks`           Table 4 (per-GEMM bound types, prefill)
:func:`fig3_gemv_validation`              Fig. 3 (GEMV prediction vs measurement)
:func:`fig4_memory_breakdown`             Fig. 4 (training memory dissection)
:func:`fig5_gpu_generation_scaling`       Fig. 5 (A100 -> B200 training scaling)
:func:`fig6_technology_node_scaling`      Fig. 6 (logic node x HBM x network sweep)
:func:`fig7_bound_breakdown`              Fig. 7 (compute- vs memory-bound GEMM time)
:func:`fig8_inference_boundedness`        Fig. 8 (prefill bound fractions + memory inset)
:func:`fig9_memory_technology_scaling`    Fig. 9 (DRAM technology scaling, inference)
========================================  =======================================

All drivers route their evaluations through the shared
:class:`~repro.sweep.runner.SweepRunner` (or one passed via ``runner=``), so
identical scenarios across tables/figures -- and across repeated calls within
one process -- are evaluated exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..calibration.gemv import GemvValidationResult
from ..core.bottleneck import gemm_time_by_bound
from ..dse.scaling import (
    MemoryScalingRow,
    NodeScalingRow,
    h100_reference_latency,
    inference_memory_scaling_study,
    technology_node_scaling_study,
)
from ..hardware.cluster import build_system, preset_cluster
from ..hardware.datatypes import Precision
from ..memmodel.activations import RecomputeStrategy
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig, parse_parallelism_label
from ..sweep import Scenario, SweepRunner, default_runner
from ..units import GB, to_milliseconds
from ..validation.metrics import relative_error
from ..validation.reference import (
    CASE_STUDY_CONFIGS,
    GPU_GENERATION_SCALING_SYSTEMS,
    TABLE1_TRAINING_ROWS,
    TABLE2_INFERENCE_ROWS,
)


# ---------------------------------------------------------------------------
# Table 1: training-time validation on A100 clusters
# ---------------------------------------------------------------------------

def table1_training_validation(rows=None, runner: Optional[SweepRunner] = None) -> List[Dict[str, object]]:
    """Reproduce Table 1: predicted vs published training time per batch."""
    rows = rows if rows is not None else TABLE1_TRAINING_ROWS
    runner = runner or default_runner()
    scenarios = [
        Scenario.training(
            build_system(
                "A100",
                num_devices=row.num_gpus,
                intra_node="NVLink3",
                inter_node="HDR-IB",
                devices_per_node=8,
            ),
            row.model,
            parse_parallelism_label(row.parallelism_label, micro_batch_size=row.micro_batch_size),
            global_batch_size=row.global_batch_size,
            recompute=row.recompute,
        )
        for row in rows
    ]
    results: List[Dict[str, object]] = []
    for row, result in zip(rows, runner.run(scenarios)):
        report = result.report
        results.append(
            {
                "model": row.model,
                "num_gpus": row.num_gpus,
                "parallelism": row.parallelism_label,
                "recompute": row.recompute,
                "reference_s": row.reference_seconds,
                "paper_pred_s": row.paper_prediction_seconds,
                "predicted_s": report.step_time,
                "relative_error_%": relative_error(report.step_time, row.reference_seconds) * 100.0,
                "compute_s": report.compute_time + report.recompute_time,
                "communication_s": report.communication_time,
                "other_s": report.other_time,
            }
        )
    return results


# ---------------------------------------------------------------------------
# Table 2: inference-latency validation on A100 / H100 systems
# ---------------------------------------------------------------------------

def table2_inference_validation(rows=None, runner: Optional[SweepRunner] = None) -> List[Dict[str, object]]:
    """Reproduce Table 2: predicted vs NVIDIA-reported Llama-2 inference latency."""
    rows = rows if rows is not None else TABLE2_INFERENCE_ROWS
    runner = runner or default_runner()
    scenarios = [
        Scenario.inference(
            build_system(
                row.gpu,
                num_devices=max(1, row.num_gpus),
                intra_node="NVLink3" if row.gpu.upper() == "A100" else "NVLink4",
                inter_node="NDR-IB",
                devices_per_node=8,
            ),
            row.model,
            batch_size=row.batch_size,
            prompt_tokens=row.prompt_tokens,
            generated_tokens=row.generated_tokens,
            tensor_parallel=row.num_gpus,
        )
        for row in rows
    ]
    results: List[Dict[str, object]] = []
    for row, result in zip(rows, runner.run(scenarios)):
        report = result.report
        results.append(
            {
                "model": row.model,
                "gpu": row.gpu,
                "num_gpus": row.num_gpus,
                "nvidia_ms": row.nvidia_latency_ms,
                "paper_pred_ms": row.paper_prediction_ms,
                "predicted_ms": report.total_latency_ms,
                "relative_error_%": relative_error(report.total_latency_ms, row.nvidia_latency_ms) * 100.0,
                "prefill_ms": to_milliseconds(report.prefill.total_time),
                "decode_ms": to_milliseconds(report.decode.total_time),
                "communication_ms": to_milliseconds(report.communication_time),
            }
        )
    return results


# ---------------------------------------------------------------------------
# Table 4: per-GEMM bottlenecks of the prefill phase
# ---------------------------------------------------------------------------

def table4_gemm_bottlenecks(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_size: int = 1,
    prompt_tokens: int = 200,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 4: time and bound type of each prefill GEMM per layer."""
    runner = runner or default_runner()
    scenarios = [
        Scenario.prefill_bottlenecks(
            gpu,
            model_name,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            tensor_parallel=1,
            precision=Precision.FP16,
        )
        for gpu in gpus
    ]
    results: List[Dict[str, object]] = []
    for gpu, result in zip(gpus, runner.run(scenarios)):
        for entry in result.value:
            results.append(
                {
                    "gpu": gpu,
                    "gemm": entry.name,
                    "m": entry.m,
                    "n": entry.n,
                    "k": entry.k,
                    "batch": entry.batch,
                    "time_us": entry.time_us,
                    "bound": entry.bound_label,
                }
            )
    return results


# ---------------------------------------------------------------------------
# Fig. 3: GEMV validation with varied vs constant DRAM utilization
# ---------------------------------------------------------------------------

def fig3_gemv_validation(
    num_clusters: int = 3, seed: int = 2024, runner: Optional[SweepRunner] = None
) -> GemvValidationResult:
    """Reproduce the Fig. 3 flow on the synthetic GEMV measurement set."""
    runner = runner or default_runner()
    return runner.evaluate(Scenario.gemv_validation(num_clusters=num_clusters, seed=seed))


# ---------------------------------------------------------------------------
# Fig. 4: training memory dissection
# ---------------------------------------------------------------------------

def fig4_memory_breakdown(
    models: Sequence[str] = ("GPT-175B", "GPT-530B", "GPT-1008B"),
    strategies: Sequence[str] = ("none", "selective", "full"),
    device_memory_gb: float = 80.0,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """Reproduce Fig. 4: per-device memory breakdown under each recompute strategy.

    The parallelism settings follow the corresponding Table 1 configurations.
    """
    table1_config = {
        "GPT-175B": ("1-8-8-1", 64),
        "GPT-530B": ("1-8-35-1", 280),
        "GPT-1008B": ("1-8-64-1", 512),
    }
    runner = runner or default_runner()
    labels = []
    scenarios = []
    for model_name in models:
        label, batch = table1_config[model_name]
        config = parse_parallelism_label(label, micro_batch_size=1)
        for strategy in strategies:
            labels.append((model_name, strategy))
            scenarios.append(
                Scenario.training_memory(
                    model_name,
                    config,
                    global_batch_size=batch,
                    recompute=strategy,
                )
            )
    results: List[Dict[str, object]] = []
    for (model_name, strategy), result in zip(labels, runner.run(scenarios)):
        breakdown = result.value
        results.append(
            {
                "model": model_name,
                "strategy": strategy,
                "parameters_gb": breakdown.parameter_bytes / GB,
                "optimizer_gb": (breakdown.optimizer_bytes + breakdown.gradient_bytes) / GB,
                "activations_gb": breakdown.activation_bytes / GB,
                "total_gb": breakdown.total_bytes / GB,
                "fits_80gb": breakdown.total_bytes / GB <= device_memory_gb,
            }
        )
    return results


# ---------------------------------------------------------------------------
# Fig. 5: training performance scaling across GPU generations
# ---------------------------------------------------------------------------

#: Per-system training precision: H100/H200 use the FP8 transformer engine,
#: B200 additionally enables FP4 processing, as the paper describes.
_GENERATION_PRECISION = {
    "A100": Precision.FP16,
    "H100": Precision.FP8,
    "H200": Precision.FP8,
    "B200": Precision.FP4,
}


def fig5_gpu_generation_scaling(
    systems: Optional[Sequence] = None,
    model_name: str = "GPT-175B",
    virtual_pipeline_stages: int = 6,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """Reproduce Fig. 5: GPT-175B training time across A100..B200 clusters.

    Returns one row per cluster with the compute / communication / other
    breakdown, the absolute step time, and the speed-up versus the A100-HDR
    baseline.  Times normalized to the fastest system are also included, as
    in the paper's figure.  The "-L" (large-batch) variants exploit their
    larger DRAM capacity with both a 4x global batch and a larger micro-batch,
    as the paper's narrative describes.
    """
    systems = systems if systems is not None else GPU_GENERATION_SCALING_SYSTEMS
    case = CASE_STUDY_CONFIGS[model_name]
    model = get_model(model_name)
    runner = runner or default_runner()
    precisions = []
    scenarios = []
    for system_name, batch_size in systems:
        cluster = preset_cluster(system_name, num_devices=case.num_gpus)
        generation = system_name.split("-")[0].upper()
        precision = _GENERATION_PRECISION.get(generation, Precision.FP16)
        large_memory_variant = system_name.upper().endswith("-L")
        config = ParallelismConfig(
            data_parallel=case.data_parallel,
            tensor_parallel=case.tensor_parallel,
            pipeline_parallel=case.pipeline_parallel,
            sequence_parallel=True,
            micro_batch_size=4 if large_memory_variant else 1,
            pipeline_schedule="interleaved",
            virtual_pipeline_stages=virtual_pipeline_stages,
        )
        precisions.append(precision)
        scenarios.append(
            Scenario.training(
                cluster,
                model,
                config,
                global_batch_size=batch_size,
                seq_len=case.seq_len,
                precision=precision,
                recompute=RecomputeStrategy.SELECTIVE,
                tag=system_name,
            )
        )
    rows: List[Dict[str, object]] = []
    for (system_name, batch_size), precision, result in zip(systems, precisions, runner.run(scenarios)):
        report = result.report
        rows.append(
            {
                "system": system_name,
                "batch_size": batch_size,
                "precision": precision.value,
                "step_time_s": report.step_time,
                "time_per_sequence_ms": to_milliseconds(report.step_time / batch_size),
                "compute_s": report.compute_time + report.recompute_time,
                "communication_s": report.communication_time,
                "other_s": report.other_time,
            }
        )
    # Normalizations: per-sequence speed-up vs the A100 baseline and time
    # normalized to the fastest (B200-NVS-L) system, as in the figure.
    baseline = rows[0]["time_per_sequence_ms"]
    fastest = min(row["time_per_sequence_ms"] for row in rows)
    for row in rows:
        row["speedup_vs_a100"] = baseline / row["time_per_sequence_ms"]
        row["normalized_time"] = row["time_per_sequence_ms"] / fastest
    return rows


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7: technology-node scaling
# ---------------------------------------------------------------------------

def fig6_technology_node_scaling(**kwargs) -> List[NodeScalingRow]:
    """Reproduce Fig. 6: GPT-7B training time across logic nodes / HBM / networks."""
    return technology_node_scaling_study(**kwargs)


def fig7_bound_breakdown(rows: Optional[List[NodeScalingRow]] = None, **kwargs) -> List[Dict[str, object]]:
    """Reproduce Fig. 7: compute- vs memory-bound GEMM time per layer across nodes.

    Accepts the rows already produced by :func:`fig6_technology_node_scaling`
    to avoid recomputing the sweep.
    """
    if rows is None:
        rows = technology_node_scaling_study(**kwargs)
    results = []
    for row in rows:
        results.append(
            {
                "technology_node": row.technology_node,
                "dram": row.dram_technology,
                "network": row.inter_node_network,
                "compute_bound_ms": row.gemm_compute_bound_time * 1e3,
                "memory_bound_ms": row.gemm_memory_bound_time * 1e3,
                "memory_bound_fraction": (
                    row.gemm_memory_bound_time / (row.gemm_memory_bound_time + row.gemm_compute_bound_time)
                    if (row.gemm_memory_bound_time + row.gemm_compute_bound_time) > 0
                    else 0.0
                ),
            }
        )
    return results


# ---------------------------------------------------------------------------
# Fig. 8: compute vs memory boundedness of the prefill phase
# ---------------------------------------------------------------------------

def fig8_inference_boundedness(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_sizes: Sequence[int] = (1, 16),
    prompt_tokens: int = 200,
    context_tokens: int = 400,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """Reproduce Fig. 8: prefill GEMM-time bound fractions plus the memory inset."""
    runner = runner or default_runner()
    cases = [(gpu, batch) for gpu in gpus for batch in batch_sizes]
    prefill_results = runner.run(
        Scenario.prefill_bottlenecks(
            gpu,
            model_name,
            batch_size=batch,
            prompt_tokens=prompt_tokens,
            tensor_parallel=1,
            precision=Precision.FP16,
        )
        for gpu, batch in cases
    )
    memory_results = runner.run(
        Scenario.inference_memory(
            model_name,
            batch_size=batch,
            context_len=context_tokens,
            tensor_parallel=1,
            precision=Precision.FP16,
        )
        for _, batch in cases
    )
    results: List[Dict[str, object]] = []
    for (gpu, batch), prefill, memory_result in zip(cases, prefill_results, memory_results):
        totals = gemm_time_by_bound(prefill.value)
        memory = memory_result.value
        accelerator = prefill.scenario.system.accelerator
        results.append(
            {
                "gpu": gpu,
                "batch_size": batch,
                "compute_bound_ms": totals["compute"] * 1e3,
                "memory_bound_ms": totals["memory"] * 1e3,
                "compute_bound_fraction": totals["compute_fraction"],
                "weights_gb": memory.weight_bytes / GB,
                "kv_cache_gb": memory.kv_cache_bytes / GB,
                "device_memory_gb": accelerator.dram_capacity / GB,
            }
        )
    return results


# ---------------------------------------------------------------------------
# Fig. 9: DRAM technology scaling for inference
# ---------------------------------------------------------------------------

def fig9_memory_technology_scaling(**kwargs) -> Dict[str, object]:
    """Reproduce Fig. 9: inference latency vs DRAM technology, 2 and 8 GPUs.

    Returns the sweep rows plus the H100 reference latencies drawn as dashed
    lines in the paper's figure.
    """
    rows: List[MemoryScalingRow] = inference_memory_scaling_study(**kwargs)
    references = {
        f"H100x{count}": h100_reference_latency(num_gpus=count)
        for count in sorted({row.num_gpus for row in rows})
    }
    return {"rows": rows, "h100_reference_latency_s": references}
