"""One function per paper table / figure.

Every function reproduces the data behind one of the paper's evaluation
artifacts and returns plain Python structures (lists of dicts) that the
benchmark harness prints and asserts on.  The mapping to the paper is:

========================================  =======================================
:func:`table1_training_validation`        Table 1 (training-time validation)
:func:`table2_inference_validation`       Table 2 (inference-latency validation)
:func:`table4_gemm_bottlenecks`           Table 4 (per-GEMM bound types, prefill)
:func:`fig3_gemv_validation`              Fig. 3 (GEMV prediction vs measurement)
:func:`fig4_memory_breakdown`             Fig. 4 (training memory dissection)
:func:`fig5_gpu_generation_scaling`       Fig. 5 (A100 -> B200 training scaling)
:func:`fig6_technology_node_scaling`      Fig. 6 (logic node x HBM x network sweep)
:func:`fig7_bound_breakdown`              Fig. 7 (compute- vs memory-bound GEMM time)
:func:`fig8_inference_boundedness`        Fig. 8 (prefill bound fractions + memory inset)
:func:`fig9_memory_technology_scaling`    Fig. 9 (DRAM technology scaling, inference)
========================================  =======================================

Beyond the paper's artifacts, :func:`serving_latency_throughput_frontier`
sweeps the request-level serving simulator (:mod:`repro.serving`) over
arrival rates and tensor-parallel degrees and returns the TTFT/TPOT tail
latencies, goodput, and utilization of each point as one columnar table.

All drivers route their evaluations through the shared
:class:`~repro.sweep.runner.SweepRunner` (or one passed via ``runner=``), so
identical scenarios across tables/figures -- and across repeated calls within
one process -- are evaluated exactly once.  Results come back as columnar
:class:`~repro.sweep.table.SweepTable` objects (one NumPy array per column);
derived metrics (relative errors, speedups, bound fractions) are computed
vectorized instead of row by row, and iteration still yields row views for
row-oriented consumers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..calibration.gemv import GemvValidationResult
from ..core.bottleneck import gemm_time_by_bound
from ..dse.scaling import (
    h100_reference_latency,
    inference_memory_scaling_study,
    technology_node_scaling_study,
)
from ..hardware.cluster import build_system, preset_cluster
from ..hardware.datatypes import Precision
from ..memmodel.activations import RecomputeStrategy
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig, parse_parallelism_label
from ..serving import LengthDistribution, SchedulerConfig, ServingConfig, ServingSLO, TraceConfig
from ..sweep import Scenario, SweepRunner, SweepTable, default_runner
from ..units import GB, to_milliseconds
from ..validation.metrics import relative_error_percent
from ..validation.reference import (
    CASE_STUDY_CONFIGS,
    GPU_GENERATION_SCALING_SYSTEMS,
    TABLE1_TRAINING_ROWS,
    TABLE2_INFERENCE_ROWS,
)


# ---------------------------------------------------------------------------
# Table 1: training-time validation on A100 clusters
# ---------------------------------------------------------------------------

def table1_training_validation(rows=None, runner: Optional[SweepRunner] = None) -> SweepTable:
    """Reproduce Table 1: predicted vs published training time per batch."""
    rows = rows if rows is not None else TABLE1_TRAINING_ROWS
    runner = runner or default_runner()
    scenarios = [
        Scenario.training(
            build_system(
                "A100",
                num_devices=row.num_gpus,
                intra_node="NVLink3",
                inter_node="HDR-IB",
                devices_per_node=8,
            ),
            row.model,
            parse_parallelism_label(row.parallelism_label, micro_batch_size=row.micro_batch_size),
            global_batch_size=row.global_batch_size,
            recompute=row.recompute,
        )
        for row in rows
    ]
    reports = [result.report for result in runner.run(scenarios)]
    table = SweepTable(
        {
            "model": [row.model for row in rows],
            "num_gpus": [row.num_gpus for row in rows],
            "parallelism": [row.parallelism_label for row in rows],
            "recompute": [row.recompute for row in rows],
            "reference_s": [row.reference_seconds for row in rows],
            "paper_pred_s": [row.paper_prediction_seconds for row in rows],
            "predicted_s": [report.step_time for report in reports],
            "compute_s": [report.compute_time + report.recompute_time for report in reports],
            "communication_s": [report.communication_time for report in reports],
            "other_s": [report.other_time for report in reports],
        }
    )
    table["relative_error_%"] = relative_error_percent(table["predicted_s"], table["reference_s"])
    return table


# ---------------------------------------------------------------------------
# Table 2: inference-latency validation on A100 / H100 systems
# ---------------------------------------------------------------------------

def table2_inference_validation(
    rows=None, runner: Optional[SweepRunner] = None, decode_mode: str = "average"
) -> SweepTable:
    """Reproduce Table 2: predicted vs NVIDIA-reported Llama-2 inference latency.

    ``decode_mode="exact"`` prices every generated token at its true KV length
    (through the batched roofline backend) instead of the mid-point closed form.
    """
    rows = rows if rows is not None else TABLE2_INFERENCE_ROWS
    runner = runner or default_runner()
    scenarios = [
        Scenario.inference(
            build_system(
                row.gpu,
                num_devices=max(1, row.num_gpus),
                intra_node="NVLink3" if row.gpu.upper() == "A100" else "NVLink4",
                inter_node="NDR-IB",
                devices_per_node=8,
            ),
            row.model,
            batch_size=row.batch_size,
            prompt_tokens=row.prompt_tokens,
            generated_tokens=row.generated_tokens,
            tensor_parallel=row.num_gpus,
            decode_mode=decode_mode,
        )
        for row in rows
    ]
    reports = [result.report for result in runner.run(scenarios)]
    table = SweepTable(
        {
            "model": [row.model for row in rows],
            "gpu": [row.gpu for row in rows],
            "num_gpus": [row.num_gpus for row in rows],
            "nvidia_ms": [row.nvidia_latency_ms for row in rows],
            "paper_pred_ms": [row.paper_prediction_ms for row in rows],
            "predicted_ms": [report.total_latency_ms for report in reports],
            "prefill_ms": [to_milliseconds(report.prefill.total_time) for report in reports],
            "decode_ms": [to_milliseconds(report.decode.total_time) for report in reports],
            "communication_ms": [to_milliseconds(report.communication_time) for report in reports],
        }
    )
    table["relative_error_%"] = relative_error_percent(table["predicted_ms"], table["nvidia_ms"])
    return table


# ---------------------------------------------------------------------------
# Table 4: per-GEMM bottlenecks of the prefill phase
# ---------------------------------------------------------------------------

def table4_gemm_bottlenecks(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_size: int = 1,
    prompt_tokens: int = 200,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Table 4: time and bound type of each prefill GEMM per layer."""
    runner = runner or default_runner()
    scenarios = [
        Scenario.prefill_bottlenecks(
            gpu,
            model_name,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            tensor_parallel=1,
            precision=Precision.FP16,
        )
        for gpu in gpus
    ]
    flat = [
        (gpu, entry)
        for gpu, result in zip(gpus, runner.run(scenarios))
        for entry in result.value
    ]
    return SweepTable(
        {
            "gpu": [gpu for gpu, _ in flat],
            "gemm": [entry.name for _, entry in flat],
            "m": [entry.m for _, entry in flat],
            "n": [entry.n for _, entry in flat],
            "k": [entry.k for _, entry in flat],
            "batch": [entry.batch for _, entry in flat],
            "time_us": [entry.time_us for _, entry in flat],
            "bound": [entry.bound_label for _, entry in flat],
        }
    )


# ---------------------------------------------------------------------------
# Fig. 3: GEMV validation with varied vs constant DRAM utilization
# ---------------------------------------------------------------------------

def fig3_gemv_validation(
    num_clusters: int = 3, seed: int = 2024, runner: Optional[SweepRunner] = None
) -> GemvValidationResult:
    """Reproduce the Fig. 3 flow on the synthetic GEMV measurement set."""
    runner = runner or default_runner()
    return runner.evaluate(Scenario.gemv_validation(num_clusters=num_clusters, seed=seed))


# ---------------------------------------------------------------------------
# Fig. 4: training memory dissection
# ---------------------------------------------------------------------------

def fig4_memory_breakdown(
    models: Sequence[str] = ("GPT-175B", "GPT-530B", "GPT-1008B"),
    strategies: Sequence[str] = ("none", "selective", "full"),
    device_memory_gb: float = 80.0,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Fig. 4: per-device memory breakdown under each recompute strategy.

    The parallelism settings follow the corresponding Table 1 configurations.
    """
    table1_config = {
        "GPT-175B": ("1-8-8-1", 64),
        "GPT-530B": ("1-8-35-1", 280),
        "GPT-1008B": ("1-8-64-1", 512),
    }
    runner = runner or default_runner()
    labels = []
    scenarios = []
    for model_name in models:
        label, batch = table1_config[model_name]
        config = parse_parallelism_label(label, micro_batch_size=1)
        for strategy in strategies:
            labels.append((model_name, strategy))
            scenarios.append(
                Scenario.training_memory(
                    model_name,
                    config,
                    global_batch_size=batch,
                    recompute=strategy,
                )
            )
    breakdowns = [result.value for result in runner.run(scenarios)]
    table = SweepTable(
        {
            "model": [model_name for model_name, _ in labels],
            "strategy": [strategy for _, strategy in labels],
            "parameters_gb": np.array([b.parameter_bytes for b in breakdowns]) / GB,
            "optimizer_gb": np.array([b.optimizer_bytes + b.gradient_bytes for b in breakdowns]) / GB,
            "activations_gb": np.array([b.activation_bytes for b in breakdowns]) / GB,
            "total_gb": np.array([b.total_bytes for b in breakdowns]) / GB,
        }
    )
    table["fits_80gb"] = table["total_gb"] <= device_memory_gb
    return table


# ---------------------------------------------------------------------------
# Fig. 5: training performance scaling across GPU generations
# ---------------------------------------------------------------------------

#: Per-system training precision: H100/H200 use the FP8 transformer engine,
#: B200 additionally enables FP4 processing, as the paper describes.
_GENERATION_PRECISION = {
    "A100": Precision.FP16,
    "H100": Precision.FP8,
    "H200": Precision.FP8,
    "B200": Precision.FP4,
}


def fig5_gpu_generation_scaling(
    systems: Optional[Sequence] = None,
    model_name: str = "GPT-175B",
    virtual_pipeline_stages: int = 6,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Fig. 5: GPT-175B training time across A100..B200 clusters.

    Returns one row per cluster with the compute / communication / other
    breakdown, the absolute step time, and the speed-up versus the A100-HDR
    baseline.  Times normalized to the fastest system are also included, as
    in the paper's figure.  The "-L" (large-batch) variants exploit their
    larger DRAM capacity with both a 4x global batch and a larger micro-batch,
    as the paper's narrative describes.
    """
    systems = systems if systems is not None else GPU_GENERATION_SCALING_SYSTEMS
    case = CASE_STUDY_CONFIGS[model_name]
    model = get_model(model_name)
    runner = runner or default_runner()
    precisions = []
    scenarios = []
    for system_name, batch_size in systems:
        cluster = preset_cluster(system_name, num_devices=case.num_gpus)
        generation = system_name.split("-")[0].upper()
        precision = _GENERATION_PRECISION.get(generation, Precision.FP16)
        large_memory_variant = system_name.upper().endswith("-L")
        config = ParallelismConfig(
            data_parallel=case.data_parallel,
            tensor_parallel=case.tensor_parallel,
            pipeline_parallel=case.pipeline_parallel,
            sequence_parallel=True,
            micro_batch_size=4 if large_memory_variant else 1,
            pipeline_schedule="interleaved",
            virtual_pipeline_stages=virtual_pipeline_stages,
        )
        precisions.append(precision)
        scenarios.append(
            Scenario.training(
                cluster,
                model,
                config,
                global_batch_size=batch_size,
                seq_len=case.seq_len,
                precision=precision,
                recompute=RecomputeStrategy.SELECTIVE,
                tag=system_name,
            )
        )
    reports = [result.report for result in runner.run(scenarios)]
    batch_sizes = np.array([batch_size for _, batch_size in systems], dtype=np.float64)
    step_times = np.array([report.step_time for report in reports])
    table = SweepTable(
        {
            "system": [system_name for system_name, _ in systems],
            "batch_size": [batch_size for _, batch_size in systems],
            "precision": [precision.value for precision in precisions],
            "step_time_s": step_times,
            "time_per_sequence_ms": to_milliseconds(step_times / batch_sizes),
            "compute_s": [report.compute_time + report.recompute_time for report in reports],
            "communication_s": [report.communication_time for report in reports],
            "other_s": [report.other_time for report in reports],
        }
    )
    # Normalizations: per-sequence speed-up vs the A100 baseline and time
    # normalized to the fastest (B200-NVS-L) system, as in the figure.
    per_sequence = table["time_per_sequence_ms"]
    table["speedup_vs_a100"] = per_sequence[0] / per_sequence
    table["normalized_time"] = per_sequence / per_sequence.min()
    return table


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7: technology-node scaling
# ---------------------------------------------------------------------------

def fig6_technology_node_scaling(**kwargs) -> SweepTable:
    """Reproduce Fig. 6: GPT-7B training time across logic nodes / HBM / networks."""
    return technology_node_scaling_study(**kwargs)


def fig7_bound_breakdown(rows: Optional[SweepTable] = None, **kwargs) -> SweepTable:
    """Reproduce Fig. 7: compute- vs memory-bound GEMM time per layer across nodes.

    Accepts the table already produced by :func:`fig6_technology_node_scaling`
    to avoid recomputing the sweep.
    """
    if rows is None:
        rows = technology_node_scaling_study(**kwargs)
    compute_bound = rows["gemm_compute_bound_time"]
    memory_bound = rows["gemm_memory_bound_time"]
    total = compute_bound + memory_bound
    return SweepTable(
        {
            "technology_node": rows["technology_node"],
            "dram": rows["dram_technology"],
            "network": rows["inter_node_network"],
            "compute_bound_ms": compute_bound * 1e3,
            "memory_bound_ms": memory_bound * 1e3,
            "memory_bound_fraction": np.divide(
                memory_bound, total, out=np.zeros_like(memory_bound), where=total > 0
            ),
        }
    )


# ---------------------------------------------------------------------------
# Fig. 8: compute vs memory boundedness of the prefill phase
# ---------------------------------------------------------------------------

def fig8_inference_boundedness(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_sizes: Sequence[int] = (1, 16),
    prompt_tokens: int = 200,
    context_tokens: int = 400,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Fig. 8: prefill GEMM-time bound fractions plus the memory inset."""
    runner = runner or default_runner()
    cases = [(gpu, batch) for gpu in gpus for batch in batch_sizes]
    prefill_results = runner.run(
        Scenario.prefill_bottlenecks(
            gpu,
            model_name,
            batch_size=batch,
            prompt_tokens=prompt_tokens,
            tensor_parallel=1,
            precision=Precision.FP16,
        )
        for gpu, batch in cases
    )
    memory_results = runner.run(
        Scenario.inference_memory(
            model_name,
            batch_size=batch,
            context_len=context_tokens,
            tensor_parallel=1,
            precision=Precision.FP16,
        )
        for _, batch in cases
    )
    totals = [gemm_time_by_bound(prefill.value) for prefill in prefill_results]
    breakdowns = [memory_result.value for memory_result in memory_results]
    return SweepTable(
        {
            "gpu": [gpu for gpu, _ in cases],
            "batch_size": [batch for _, batch in cases],
            "compute_bound_ms": np.array([total["compute"] for total in totals]) * 1e3,
            "memory_bound_ms": np.array([total["memory"] for total in totals]) * 1e3,
            "compute_bound_fraction": [total["compute_fraction"] for total in totals],
            "weights_gb": np.array([memory.weight_bytes for memory in breakdowns]) / GB,
            "kv_cache_gb": np.array([memory.kv_cache_bytes for memory in breakdowns]) / GB,
            "device_memory_gb": np.array(
                [prefill.scenario.system.accelerator.dram_capacity for prefill in prefill_results]
            )
            / GB,
        }
    )


# ---------------------------------------------------------------------------
# Serving: latency-throughput frontier from the request-level simulator
# ---------------------------------------------------------------------------

def serving_latency_throughput_frontier(
    model_name: str = "Llama2-13B",
    gpu: str = "A100",
    num_devices: int = 8,
    arrival_rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    tensor_parallels: Sequence[int] = (1,),
    arrival: str = "poisson",
    num_requests: int = 48,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
    max_batch_size: int = 32,
    slo: Optional[ServingSLO] = None,
    precision: "Precision | str" = Precision.FP16,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Sweep the serving simulator over arrival rate and TP degree.

    Beyond the paper: the request-level latency-throughput frontier of a
    continuous-batching server, one simulation per (rate, TP) grid point.
    Each row carries the TTFT/TPOT p50/p99 tail latencies, throughput,
    goodput under the SLO, and device utilization; infeasible corners (e.g.
    the model does not fit one device) land in the ``error`` column instead
    of aborting the sweep.
    """
    runner = runner or default_runner()
    system = build_system(
        gpu,
        num_devices=num_devices,
        intra_node="NVLink3" if gpu.upper().startswith("A100") else "NVLink4",
        inter_node="HDR-IB",
    )
    slo = slo or ServingSLO()
    prompt_lengths = prompt_lengths or LengthDistribution.uniform(64, 512)
    output_lengths = output_lengths or LengthDistribution.constant(128)
    scenarios = []
    for tensor_parallel in tensor_parallels:
        for rate in arrival_rates:
            config = ServingConfig(
                trace=TraceConfig(
                    rate=rate,
                    num_requests=num_requests,
                    arrival=arrival,
                    prompt_lengths=prompt_lengths,
                    output_lengths=output_lengths,
                    seed=seed,
                ),
                scheduler=SchedulerConfig(max_batch_size=max_batch_size),
                slo=slo,
            )
            scenarios.append(
                Scenario.serving(
                    system,
                    model_name,
                    config,
                    tensor_parallel=tensor_parallel,
                    precision=precision,
                )
            )

    def extract(result):
        scenario = result.scenario
        report = result.report
        row = {
            "model": scenario.model.name,
            "gpu": gpu,
            "tensor_parallel": scenario.tensor_parallel,
            "arrival_rate": scenario.serving_config.trace.rate,
            "arrival": scenario.serving_config.trace.arrival,
            "completed": report.completed_requests if result.ok else 0,
            "rejected": report.rejected_requests if result.ok else 0,
            "ttft_p50_s": report.ttft_p50 if result.ok else None,
            "ttft_p99_s": report.ttft_p99 if result.ok else None,
            "tpot_p50_s": report.tpot_p50 if result.ok else None,
            "tpot_p99_s": report.tpot_p99 if result.ok else None,
            "requests_per_s": report.request_throughput if result.ok else None,
            "tokens_per_s": report.output_token_throughput if result.ok else None,
            "goodput_rps": report.goodput if result.ok else None,
            "slo_attainment": report.slo_attainment if result.ok else None,
            "utilization": report.device_utilization if result.ok else None,
            "mean_decode_batch": report.mean_decode_batch if result.ok else None,
            "error": result.error,
        }
        return row

    return runner.run_table(scenarios, extract=extract, capture_errors=True)


# ---------------------------------------------------------------------------
# Fig. 9: DRAM technology scaling for inference
# ---------------------------------------------------------------------------

def fig9_memory_technology_scaling(**kwargs) -> Dict[str, object]:
    """Reproduce Fig. 9: inference latency vs DRAM technology, 2 and 8 GPUs.

    Returns the sweep table plus the H100 reference latencies drawn as dashed
    lines in the paper's figure.
    """
    rows: SweepTable = inference_memory_scaling_study(**kwargs)
    references = {
        f"H100x{count}": h100_reference_latency(num_gpus=count)
        for count in sorted(set(rows["num_gpus"].tolist()))
    }
    return {"rows": rows, "h100_reference_latency_s": references}
