"""One function per paper table / figure, backed by the Study registry.

Every function reproduces the data behind one of the paper's evaluation
artifacts.  Since the Study redesign these drivers are thin shims: each one
builds the registered :class:`~repro.studies.study.Study` declaration of its
artifact (see :mod:`repro.studies.paper`) and runs it, so the same sweep is
equally available from Python, from ``python -m repro run <study>``, and --
for the name-based studies -- from a JSON spec.  The mapping to the paper
(function = registered study name):

========================================  =======================================
:func:`table1_training_validation`        Table 1 (training-time validation)
:func:`table2_inference_validation`       Table 2 (inference-latency validation)
:func:`table4_gemm_bottlenecks`           Table 4 (per-GEMM bound types, prefill)
:func:`fig3_gemv_validation`              Fig. 3 (GEMV prediction vs measurement)
:func:`fig4_memory_breakdown`             Fig. 4 (training memory dissection)
:func:`fig5_gpu_generation_scaling`       Fig. 5 (A100 -> B200 training scaling)
:func:`fig6_technology_node_scaling`      Fig. 6 (logic node x HBM x network sweep)
:func:`fig7_bound_breakdown`              Fig. 7 (compute- vs memory-bound GEMM time)
:func:`fig8_inference_boundedness`        Fig. 8 (prefill bound fractions + memory inset)
:func:`fig9_memory_technology_scaling`    Fig. 9 (DRAM technology scaling, inference)
========================================  =======================================

Beyond the paper's artifacts, :func:`serving_latency_throughput_frontier`
sweeps the request-level serving simulator (:mod:`repro.serving`) over
arrival rates and tensor-parallel degrees and returns the TTFT/TPOT tail
latencies, goodput, and utilization of each point as one columnar table.

All drivers route their evaluations through the shared
:class:`~repro.sweep.runner.SweepRunner` (or one passed via ``runner=``), so
identical scenarios across tables/figures -- and across repeated calls within
one process -- are evaluated exactly once.  Results come back as columnar
:class:`~repro.sweep.table.SweepTable` objects (one NumPy array per column)
with the study's axis columns attached; derived metrics (relative errors,
speedups, bound fractions) are the studies' registered ``derive`` steps,
computed vectorized instead of row by row.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..calibration.gemv import GemvValidationResult
from ..dse.scaling import (
    h100_reference_latency,
    inference_memory_scaling_study,
    technology_node_scaling_study,
)
from ..hardware.datatypes import Precision
from ..serving import LengthDistribution, ServingSLO
from ..studies import paper as _paper
from ..studies.extractors import fig7_projection
from ..sweep import SweepRunner, SweepTable, default_runner


# ---------------------------------------------------------------------------
# Table 1: training-time validation on A100 clusters
# ---------------------------------------------------------------------------

def table1_training_validation(rows=None, runner: Optional[SweepRunner] = None) -> SweepTable:
    """Reproduce Table 1: predicted vs published training time per batch.

    Registered study: ``table1_training_validation``.
    """
    return _paper.table1_training_validation(rows=rows).run(runner=runner)


# ---------------------------------------------------------------------------
# Table 2: inference-latency validation on A100 / H100 systems
# ---------------------------------------------------------------------------

def table2_inference_validation(
    rows=None, runner: Optional[SweepRunner] = None, decode_mode: str = "average"
) -> SweepTable:
    """Reproduce Table 2: predicted vs NVIDIA-reported Llama-2 inference latency.

    ``decode_mode="exact"`` prices every generated token at its true KV length
    (through the batched roofline backend) instead of the mid-point closed form.

    Registered study: ``table2_inference_validation``.
    """
    return _paper.table2_inference_validation(rows=rows, decode_mode=decode_mode).run(runner=runner)


# ---------------------------------------------------------------------------
# Table 4: per-GEMM bottlenecks of the prefill phase
# ---------------------------------------------------------------------------

def table4_gemm_bottlenecks(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_size: int = 1,
    prompt_tokens: int = 200,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Table 4: time and bound type of each prefill GEMM per layer.

    Registered study: ``table4_gemm_bottlenecks`` (name-based, so its JSON
    spec runs from the CLI).
    """
    return _paper.table4_gemm_bottlenecks(
        model_name=model_name, gpus=gpus, batch_size=batch_size, prompt_tokens=prompt_tokens
    ).run(runner=runner)


# ---------------------------------------------------------------------------
# Fig. 3: GEMV validation with varied vs constant DRAM utilization
# ---------------------------------------------------------------------------

def fig3_gemv_validation(
    num_clusters: int = 3, seed: int = 2024, runner: Optional[SweepRunner] = None
) -> GemvValidationResult:
    """Reproduce the Fig. 3 flow on the synthetic GEMV measurement set.

    Returns the raw :class:`GemvValidationResult` (the registered
    ``fig3_gemv_validation`` study tabulates its headline errors instead).
    """
    runner = runner or default_runner()
    study = _paper.fig3_gemv_validation(num_clusters=num_clusters, seed=seed)
    return runner.evaluate(next(study.scenarios()))


# ---------------------------------------------------------------------------
# Fig. 4: training memory dissection
# ---------------------------------------------------------------------------

def fig4_memory_breakdown(
    models: Sequence[str] = ("GPT-175B", "GPT-530B", "GPT-1008B"),
    strategies: Sequence[str] = ("none", "selective", "full"),
    device_memory_gb: float = 80.0,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Fig. 4: per-device memory breakdown under each recompute strategy.

    The parallelism settings follow the corresponding Table 1 configurations.

    Registered study: ``fig4_memory_breakdown``.
    """
    return _paper.fig4_memory_breakdown(
        models=models, strategies=strategies, device_memory_gb=device_memory_gb
    ).run(runner=runner)


# ---------------------------------------------------------------------------
# Fig. 5: training performance scaling across GPU generations
# ---------------------------------------------------------------------------

def fig5_gpu_generation_scaling(
    systems: Optional[Sequence] = None,
    model_name: str = "GPT-175B",
    virtual_pipeline_stages: int = 6,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Fig. 5: GPT-175B training time across A100..B200 clusters.

    Returns one row per cluster with the compute / communication / other
    breakdown, the absolute step time, and the speed-up versus the A100-HDR
    baseline.  Times normalized to the fastest system are also included, as
    in the paper's figure.

    Registered study: ``fig5_gpu_generation_scaling``.
    """
    return _paper.fig5_gpu_generation_scaling(
        systems=systems, model_name=model_name, virtual_pipeline_stages=virtual_pipeline_stages
    ).run(runner=runner)


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7: technology-node scaling
# ---------------------------------------------------------------------------

def fig6_technology_node_scaling(**kwargs) -> SweepTable:
    """Reproduce Fig. 6: GPT-7B training time across logic nodes / HBM / networks.

    Registered study: ``fig6_technology_node_scaling`` (this is the
    :func:`~repro.dse.scaling.technology_node_scaling_study` case study).
    """
    return technology_node_scaling_study(**kwargs)


def fig7_bound_breakdown(rows: Optional[SweepTable] = None, **kwargs) -> SweepTable:
    """Reproduce Fig. 7: compute- vs memory-bound GEMM time per layer across nodes.

    Accepts the table already produced by :func:`fig6_technology_node_scaling`
    to avoid recomputing the sweep.

    Registered study: ``fig7_bound_breakdown``.
    """
    if rows is None:
        rows = technology_node_scaling_study(**kwargs)
    return fig7_projection(rows)


# ---------------------------------------------------------------------------
# Fig. 8: compute vs memory boundedness of the prefill phase
# ---------------------------------------------------------------------------

def fig8_inference_boundedness(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_sizes: Sequence[int] = (1, 16),
    prompt_tokens: int = 200,
    context_tokens: int = 400,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Reproduce Fig. 8: prefill GEMM-time bound fractions plus the memory inset.

    Registered study: ``fig8_inference_boundedness`` (name-based, so its
    JSON spec runs from the CLI).
    """
    return _paper.fig8_inference_boundedness(
        model_name=model_name,
        gpus=gpus,
        batch_sizes=batch_sizes,
        prompt_tokens=prompt_tokens,
        context_tokens=context_tokens,
    ).run(runner=runner)


# ---------------------------------------------------------------------------
# Serving: latency-throughput frontier from the request-level simulator
# ---------------------------------------------------------------------------

def serving_latency_throughput_frontier(
    model_name: str = "Llama2-13B",
    gpu: str = "A100",
    num_devices: int = 8,
    arrival_rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    tensor_parallels: Sequence[int] = (1,),
    arrival: str = "poisson",
    num_requests: int = 48,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
    max_batch_size: int = 32,
    slo: Optional[ServingSLO] = None,
    precision: "Precision | str" = Precision.FP16,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Sweep the serving simulator over arrival rate and TP degree.

    Beyond the paper: the request-level latency-throughput frontier of a
    continuous-batching server, one simulation per (rate, TP) grid point.
    Each row carries the TTFT/TPOT p50/p99 tail latencies, throughput,
    goodput under the SLO, and device utilization; infeasible corners (e.g.
    the model does not fit one device) land in the ``error`` column instead
    of aborting the sweep.

    Registered study: ``serving_latency_throughput_frontier``.
    """
    return _paper.serving_latency_throughput_frontier(
        model_name=model_name,
        gpu=gpu,
        num_devices=num_devices,
        arrival_rates=arrival_rates,
        tensor_parallels=tensor_parallels,
        arrival=arrival,
        num_requests=num_requests,
        prompt_lengths=prompt_lengths,
        output_lengths=output_lengths,
        seed=seed,
        max_batch_size=max_batch_size,
        slo=slo,
        precision=precision,
    ).run(runner=runner)


# ---------------------------------------------------------------------------
# Fig. 9: DRAM technology scaling for inference
# ---------------------------------------------------------------------------

def fig9_memory_technology_scaling(**kwargs) -> Dict[str, object]:
    """Reproduce Fig. 9: inference latency vs DRAM technology, 2 and 8 GPUs.

    Returns the sweep table plus the H100 reference latencies drawn as dashed
    lines in the paper's figure.

    Registered study: ``fig9_memory_technology_scaling`` (the table part;
    this wrapper adds the reference-latency lines).
    """
    rows: SweepTable = inference_memory_scaling_study(**kwargs)
    references = {
        f"H100x{count}": h100_reference_latency(num_gpus=count)
        for count in sorted(set(rows["num_gpus"].tolist()))
    }
    return {"rows": rows, "h100_reference_latency_s": references}
