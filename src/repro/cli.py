"""``python -m repro``: run registered studies and JSON study specs.

Subcommands:

* ``repro list`` -- registered studies (with their paper artifact), plus
  ``--models`` / ``--systems`` / ``--extractors`` for the other registries.
* ``repro spec <study>`` -- print a registered study's JSON spec (the
  document ``repro run`` accepts); start from this to define custom sweeps.
* ``repro run <study-or-spec.json>`` -- execute a registered study or a spec
  file: streams per-scenario progress to stderr, prints the result table,
  and exports ``--csv`` / ``--json``.  ``--executor thread|process`` fans the
  evaluations out; study builder keywords pass as ``-p name=value``.
  Results persist to the on-disk store (``~/.cache/repro`` or
  ``$REPRO_CACHE_DIR``) so re-running a study prices nothing; point
  ``--cache-dir`` elsewhere or disable with ``--no-disk-cache``.
* ``repro cache stats|clear|prune`` -- inspect or clean that store:
  ``stats`` reports entries/bytes per fingerprint, ``clear`` empties the
  current fingerprint, ``prune`` drops stale fingerprints (``--all`` drops
  the current one too).
* ``repro serve`` -- the resident study service: an HTTP server where every
  submitted study runs through ONE shared warm runner (see
  :mod:`repro.service`), so resubmissions and overlapping grids price
  nothing.  ``POST /studies`` submits, ``GET /jobs/<id>/events`` streams
  NDJSON rows, ``GET /jobs/<id>/table.csv`` fetches the finished table.

Examples::

    python -m repro list
    python -m repro run table4_gemm_bottlenecks --csv table4.csv
    python -m repro spec table4_gemm_bottlenecks > sweep.json
    python -m repro run sweep.json --executor process --json out.json
    python -m repro run serving_latency_throughput_frontier -p num_requests=16
    python -m repro cache stats
    python -m repro serve --port 8642 --workers 2
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from typing import Dict, List, Optional, Sequence

from .errors import ReproError
from .studies import Study, get_study, list_studies
from .studies.extractors import list_derives, list_extractors
from .sweep import SweepResult, SweepRunner, SweepTable


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's registered studies (or your own JSON study specs).",
    )
    sub = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    list_cmd = sub.add_parser("list", help="list registered studies and registries")
    list_cmd.add_argument("--models", action="store_true", help="also list the model zoo")
    list_cmd.add_argument("--systems", action="store_true", help="also list the system catalog")
    list_cmd.add_argument(
        "--extractors", action="store_true", help="also list named extractors and derives"
    )
    list_cmd.set_defaults(handler=_cmd_list)

    spec_cmd = sub.add_parser("spec", help="print a registered study's JSON spec")
    spec_cmd.add_argument("study", help="registered study name")
    spec_cmd.add_argument("-p", "--param", action="append", default=[], metavar="NAME=VALUE",
                          help="study builder keyword (repeatable)")
    spec_cmd.add_argument("-o", "--out", default=None, help="write the spec to a file instead of stdout")
    spec_cmd.set_defaults(handler=_cmd_spec)

    run_cmd = sub.add_parser("run", help="run a registered study or a spec.json file")
    run_cmd.add_argument("study", help="registered study name, or a path to a JSON spec")
    run_cmd.add_argument("-p", "--param", action="append", default=[], metavar="NAME=VALUE",
                         help="study builder keyword (registered studies only; repeatable)")
    run_cmd.add_argument("--executor", choices=("serial", "thread", "process"), default="serial",
                         help="how to evaluate the expanded scenarios (default: serial)")
    run_cmd.add_argument("--max-workers", type=int, default=None, help="worker count for pooled executors")
    run_cmd.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="root of the persistent result store "
                              "(default: ~/.cache/repro, or $REPRO_CACHE_DIR)")
    run_cmd.add_argument("--no-disk-cache", action="store_true",
                         help="do not read or write the persistent result store")
    run_cmd.add_argument("--csv", default=None, metavar="PATH", help="write the result table as CSV")
    run_cmd.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                         help="write the result table as JSON")
    run_cmd.add_argument("--quiet", action="store_true", help="suppress the table and progress output")
    run_cmd.add_argument("--max-rows", type=int, default=40,
                         help="rows printed to stdout (default: 40; the exports always carry all rows)")
    run_cmd.set_defaults(handler=_cmd_run)

    serve_cmd = sub.add_parser("serve", help="run the resident HTTP study service")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8642, help="bind port (default: 8642; 0 picks a free one)")
    serve_cmd.add_argument("--workers", type=int, default=2,
                           help="concurrent study jobs (default: 2); all share one warm runner")
    serve_cmd.add_argument("--executor", choices=("serial", "thread", "process"), default="serial",
                           help="how each job evaluates its scenarios (default: serial)")
    serve_cmd.add_argument("--max-workers", type=int, default=None, help="worker count for pooled executors")
    serve_cmd.add_argument("--cache-dir", default=None, metavar="PATH",
                           help="root of the persistent result store "
                                "(default: ~/.cache/repro, or $REPRO_CACHE_DIR)")
    serve_cmd.add_argument("--no-disk-cache", action="store_true",
                           help="do not read or write the persistent result store")
    serve_cmd.set_defaults(handler=_cmd_serve)

    cache_cmd = sub.add_parser("cache", help="inspect or clean the persistent result store")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command")
    cache_cmd.set_defaults(handler=_cmd_cache, cache_command=None)
    for verb, help_text in (
        ("stats", "entry counts and bytes per fingerprint"),
        ("clear", "delete every entry under the current fingerprint"),
        ("prune", "delete stale fingerprint directories"),
    ):
        verb_cmd = cache_sub.add_parser(verb, help=help_text)
        verb_cmd.add_argument("--cache-dir", default=None, metavar="PATH",
                              help="root of the persistent result store "
                                   "(default: ~/.cache/repro, or $REPRO_CACHE_DIR)")
        verb_cmd.set_defaults(handler=_cmd_cache, cache_command=verb)
        if verb == "prune":
            verb_cmd.add_argument("--keep-current", dest="keep_current", action="store_true", default=True,
                                  help="keep the current fingerprint (default)")
            verb_cmd.add_argument("--all", dest="keep_current", action="store_false",
                                  help="also delete the current fingerprint")
    return parser


# ---------------------------------------------------------------------------
# repro list
# ---------------------------------------------------------------------------

def _cmd_list(args: argparse.Namespace) -> int:
    entries = list_studies()
    width = max((len(entry.name) for entry in entries), default=0)
    print("registered studies:")
    for entry in entries:
        artifact = f"[{entry.artifact}] " if entry.artifact else ""
        print(f"  {entry.name:<{width}}  {artifact}{entry.description}")
    if args.models:
        from .models.zoo import list_models

        print("\nmodels:")
        for name in list_models():
            print(f"  {name}")
    if args.systems:
        from .hardware.catalog import list_systems

        print("\nsystems:")
        for name in list_systems():
            print(f"  {name}")
    if args.extractors:
        print("\nextractors:")
        for name in list_extractors():
            print(f"  {name}")
        print("\nderives:")
        for name in list_derives():
            print(f"  {name}")
    return 0


# ---------------------------------------------------------------------------
# repro spec
# ---------------------------------------------------------------------------

def _cmd_spec(args: argparse.Namespace) -> int:
    study = get_study(args.study, **_parse_params(args.param))
    text = study.to_json(indent=1)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


# ---------------------------------------------------------------------------
# repro run
# ---------------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    study = _resolve_study(args.study, _parse_params(args.param))
    if args.no_disk_cache:
        disk_cache: "str | bool" = False
    else:
        disk_cache = args.cache_dir if args.cache_dir is not None else True
    runner = SweepRunner(executor=args.executor, max_workers=args.max_workers, disk_cache=disk_cache)
    total = sum(1 for _ in study.combos())
    progress = None if args.quiet else _Progress(study.name, total)
    started = time.perf_counter()
    try:
        table = study.run(runner=runner, on_result=progress)
    except KeyboardInterrupt:
        # Every completed scenario has already been flushed to the disk
        # store by the runner (results persist per-evaluation, not at the
        # end), so an interrupted sweep loses nothing: the follow-up run
        # resumes from the store and prices only the remainder.
        elapsed = time.perf_counter() - started
        if progress is not None:
            progress.finish()
        print("interrupted", file=sys.stderr)
        _print_stats_line(study.name, f"interrupted after {elapsed:.2f}s",
                          runner, args.executor)
        if disk_cache is not False:
            print(f"re-run `repro run {args.study}` to resume; completed scenarios "
                  "are priced from the persistent store", file=sys.stderr)
        return 130
    elapsed = time.perf_counter() - started
    if progress is not None:
        progress.finish()
    if not args.quiet:
        _print_table(table, max_rows=args.max_rows)
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(table.to_json(indent=1) + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    _print_stats_line(study.name, f"{len(table)} rows in {elapsed:.2f}s", runner, args.executor)
    return 0


def _print_stats_line(name: str, headline: str, runner: SweepRunner, executor: str) -> None:
    """The closing one-line sweep summary on stderr (shared with the interrupt path)."""
    stats = runner.stats.snapshot()
    print(
        f"{name}: {headline} "
        f"({stats['evaluations']} evaluations, {stats['cache_hits']} cache hits, "
        f"{stats['disk_hits']} disk hits, {stats['batched_scenarios']} batched, "
        f"{stats['errors']} errors, "
        f"key-hash {stats['keyhash_seconds']:.2f}s, plan {stats['plan_seconds']:.2f}s, "
        f"price {stats['price_seconds']:.2f}s, scatter {stats['scatter_seconds']:.2f}s, "
        f"executor={executor})",
        file=sys.stderr,
    )


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceApi, StudyService, build_registry, make_server

    if args.no_disk_cache:
        disk_cache: "str | bool" = False
    else:
        disk_cache = args.cache_dir if args.cache_dir is not None else True
    registry = build_registry(
        workers=args.workers,
        disk_cache=disk_cache,
        executor=args.executor,
        max_workers=args.max_workers,
    )
    service = StudyService(registry)
    server = make_server(ServiceApi(service), host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"({args.workers} worker(s), executor={args.executor}; POST /studies to submit)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.close()
    return 0


# ---------------------------------------------------------------------------
# repro cache
# ---------------------------------------------------------------------------

def _cmd_cache(args: argparse.Namespace) -> int:
    from .sweep import DiskResultStore

    if args.cache_command is None:
        print("usage: repro cache {stats,clear,prune} [--cache-dir PATH]", file=sys.stderr)
        return 2
    store = DiskResultStore(root=args.cache_dir) if args.cache_dir else DiskResultStore()
    if args.cache_command == "stats":
        report = store.stats()
        if not report:
            print(f"{store.root}: empty (no fingerprint directories)")
            return 0
        print(f"{store.root}:")
        for fingerprint, info in report.items():
            marker = "  (current)" if info["current"] else ""
            print(f"  {fingerprint}  {info['entries']} entries, {info['bytes']} bytes{marker}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} entries under {store.root / store.fingerprint}")
        return 0
    removed_fingerprints = store.prune(keep_current=args.keep_current)
    if removed_fingerprints:
        print(f"pruned {len(removed_fingerprints)} fingerprint(s): {', '.join(removed_fingerprints)}")
    else:
        print("nothing to prune")
    return 0


def _resolve_study(name_or_path: str, params: Dict[str, object]) -> Study:
    """A registered name, or a path to a ``Study.to_dict()`` JSON document."""
    import json
    import os

    if not (name_or_path.endswith(".json") or os.path.sep in name_or_path):
        try:
            return get_study(name_or_path, **params)
        except TypeError as error:
            # A mistyped -p name reaches the builder as an unexpected keyword.
            raise ReproError(f"bad -p parameter for study {name_or_path!r}: {error}") from None
    if params:
        raise ReproError("-p parameters apply to registered studies, not spec files")
    try:
        with open(name_or_path) as handle:
            return Study.from_json(handle.read())
    except OSError as error:
        raise ReproError(f"cannot read study spec {name_or_path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise ReproError(f"{name_or_path!r} is not a valid JSON study spec: {error}") from None


def _parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``name=value`` flags; values are Python literals when possible."""
    params: Dict[str, object] = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise ReproError(f"expected NAME=VALUE, got {pair!r}")
        try:
            params[name] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            params[name] = raw  # plain string (model/system names, modes)
    return params


class _Progress:
    """Streaming per-scenario progress line on stderr (via ``on_result``).

    The live ``\\r`` line renders only when stderr is a TTY; piped, CI, and
    server logs get no per-scenario noise (the closing stats line on stderr
    still prints).  ``--quiet`` suppresses even that by not constructing one.
    """

    def __init__(self, name: str, total: int):
        self.name = name
        self.total = total
        self.done = 0
        self.live = getattr(sys.stderr, "isatty", lambda: False)()

    def __call__(self, result: SweepResult) -> None:
        self.done += 1
        if not self.live:
            return
        source = "cached" if result.from_cache else ("error" if result.error else "ok")
        scenario = result.scenario
        what = scenario.model.name if scenario.model is not None else scenario.kind.value
        sys.stderr.write(f"\r{self.name}: {self.done}/{self.total} [{source:>6}] {what:<24}")
        sys.stderr.flush()

    def finish(self) -> None:
        if self.done and self.live:
            sys.stderr.write("\n")
            sys.stderr.flush()


def _print_table(table: SweepTable, max_rows: int = 40) -> None:
    """Render the table as fixed-width text (floats shortened for reading)."""
    names = table.keys()
    if not names:
        print("(empty table)")
        return

    def fmt(value: object) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    rows_shown: List[List[str]] = []
    for index, row in enumerate(table):
        if index >= max_rows:
            break
        rows_shown.append([fmt(row[name]) for name in names])
    widths = [
        max(len(name), *(len(row[i]) for row in rows_shown)) if rows_shown else len(name)
        for i, name in enumerate(names)
    ]
    print("  ".join(name.ljust(width) for name, width in zip(names, widths)))
    for row in rows_shown:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    if len(table) > max_rows:
        print(f"... ({len(table) - max_rows} more rows; use --csv/--json for the full table)")
