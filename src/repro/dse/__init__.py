"""Design-space exploration: design points, search, and technology-scaling studies."""

from .scaling import (
    h100_reference_latency,
    inference_memory_scaling_study,
    technology_node_scaling_study,
)
from .search import GradientDescentSearch, SearchResult, optimize_allocation
from .space import DesignPoint, DesignSpace

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "GradientDescentSearch",
    "SearchResult",
    "h100_reference_latency",
    "inference_memory_scaling_study",
    "optimize_allocation",
    "technology_node_scaling_study",
]
