"""Technology-scaling case studies built on the DSE engine.

Two sweeps from the paper's case studies live here:

* :func:`technology_node_scaling_study` -- training time per iteration of the
  GPT-7B case study across logic nodes N12..N1 for different HBM generations
  and inter-node network speeds (paper Fig. 6), with the per-layer compute-
  vs-memory-bound GEMM breakdown that explains the saturation (Fig. 7).
* :func:`inference_memory_scaling_study` -- inference latency of Llama2-13B
  on 2- and 8-GPU systems as the DRAM technology scales from GDDR6 to a
  futuristic HBMX while the compute die stays at the A100's 7 nm node
  (paper Fig. 9).

Both studies express their grid as :class:`~repro.sweep.scenario.Scenario`
lists and evaluate through a :class:`~repro.sweep.runner.SweepRunner`, so
shared sub-evaluations (e.g. the Fig.-7 bound breakdown, which depends only
on the derived accelerator, not on the network choice) are deduplicated and
repeated calls hit the result cache.  Results are returned as columnar
:class:`~repro.sweep.table.SweepTable` objects (one NumPy array per column);
iterating still yields row views with attribute access (``row.step_time``,
``row.label``), so row-oriented consumers keep working.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


from ..hardware.accelerator import get_accelerator
from ..hardware.cluster import build_system
from ..hardware.datatypes import Precision
from ..hardware.memory import get_dram_technology
from ..hardware.technology import NODE_ORDER
from ..hardware.uarch import ResourceBudget
from ..memmodel.activations import RecomputeStrategy
from ..models.transformer import TransformerConfig
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig
from ..sweep import Scenario, SweepRunner, SweepTable, default_runner
from .search import GradientDescentSearch, SearchResult
from .space import DesignPoint, DesignSpace


def technology_node_scaling_study(
    model: "TransformerConfig | str" = "GPT-7B",
    parallelism: Optional[ParallelismConfig] = None,
    global_batch_size: int = 512,
    num_devices: int = 1024,
    nodes: Sequence[str] = tuple(NODE_ORDER),
    combinations: Optional[Sequence[Dict[str, str]]] = None,
    precision: Precision = Precision.FP16,
    recompute: RecomputeStrategy = RecomputeStrategy.SELECTIVE,
    optimize_allocation: bool = False,
    budget: Optional[ResourceBudget] = None,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Sweep logic technology nodes for the GPT-7B training case study (Fig. 6).

    Args:
        model: Model to train (the paper uses GPT-7B).
        parallelism: Parallelism configuration; defaults to the paper's
            64-4-4-4 case-study setting.
        global_batch_size: Global batch size (512 in the paper).
        num_devices: Total GPU count (1024 in the paper).
        nodes: Logic nodes to sweep, oldest first.
        combinations: List of ``{"dram": ..., "network": ...}`` choices; the
            default reproduces the six curves of Fig. 6.
        precision: Training precision.
        recompute: Activation recomputation strategy.
        optimize_allocation: Run the per-node DSE allocation search instead of
            using the default area/power split.
        budget: Area/power budget of the derived devices.
        runner: Sweep runner to evaluate through (the shared default when
            omitted).

    Returns:
        A :class:`SweepTable` with one row per (node, dram, network)
        combination; the ``label`` column carries the paper's legend labels.
    """
    model = get_model(model) if isinstance(model, str) else model
    if parallelism is None:
        parallelism = ParallelismConfig(
            data_parallel=64,
            tensor_parallel=4,
            pipeline_parallel=4,
            sequence_parallel=True,
            micro_batch_size=1,
        )
    if combinations is None:
        combinations = [
            {"dram": "HBM2", "network": "NDR-x8"},
            {"dram": "HBM2E", "network": "NDR-x8"},
            {"dram": "HBM3", "network": "NDR-x8"},
            {"dram": "HBM4", "network": "NDR-x8"},
            {"dram": "HBM4", "network": "XDR-x8"},
            {"dram": "HBM4", "network": "GDR-x8"},
        ]
    budget = budget or ResourceBudget()
    runner = runner or default_runner()
    space = DesignSpace(budget=budget)

    grid = [(node, combo) for node in nodes for combo in combinations]
    systems = []
    for node, combo in grid:
        point = DesignPoint(
            technology_node=node,
            dram_technology=combo["dram"],
            inter_node_network=combo["network"],
        )
        if optimize_allocation:
            point = _optimize_point(
                point, space, model, parallelism, global_batch_size, num_devices, precision, recompute, budget, runner
            )
        systems.append(point.build_system(num_devices=num_devices, budget=budget))

    training_results = runner.run(
        Scenario.training(
            system,
            model,
            parallelism,
            global_batch_size=global_batch_size,
            precision=precision,
            recompute=recompute,
        )
        for system in systems
    )
    # The bound breakdown depends on the accelerator only, so grid points that
    # differ just in the network dedup onto one evaluation inside the runner.
    bound_results = runner.run(
        Scenario.attention_bound(
            system.accelerator,
            model,
            micro_batch=parallelism.micro_batch_size,
            seq_len=model.max_seq_len,
            tensor_parallel=parallelism.tensor_parallel,
            precision=precision,
        )
        for system in systems
    )

    reports = [training.report for training in training_results]
    table = SweepTable(
        {
            "technology_node": [node for node, _ in grid],
            "dram_technology": [combo["dram"] for _, combo in grid],
            "inter_node_network": [combo["network"] for _, combo in grid],
            "step_time": [report.step_time for report in reports],
            "compute_time": [report.compute_time + report.recompute_time for report in reports],
            "communication_time": [report.communication_time for report in reports],
            "other_time": [report.other_time for report in reports],
            "gemm_compute_bound_time": [bound.value["compute_bound"] for bound in bound_results],
            "gemm_memory_bound_time": [bound.value["memory_bound"] for bound in bound_results],
        }
    )
    # Series label as the paper's legend writes it.
    table["label"] = [f"{combo['dram']}-{combo['network']}" for _, combo in grid]
    return table


def _optimize_point(
    point: DesignPoint,
    space: DesignSpace,
    model: TransformerConfig,
    parallelism: ParallelismConfig,
    global_batch_size: int,
    num_devices: int,
    precision: Precision,
    recompute: RecomputeStrategy,
    budget: ResourceBudget,
    runner: Optional[SweepRunner] = None,
) -> DesignPoint:
    """Optimize the area/power allocation of ``point`` for the training workload.

    The descent's gradient probes go through ``probe_objective`` -- one
    batched :meth:`SweepRunner.run` call per descent iteration -- so the
    runner deduplicates repeated probe points and infeasible corners are
    captured per-probe instead of aborting the whole batch.
    """
    runner = runner or default_runner()

    def scenario_for(candidate: DesignPoint) -> Scenario:
        return Scenario.training(
            candidate.build_system(num_devices=num_devices, budget=budget),
            model,
            parallelism,
            global_batch_size=global_batch_size,
            precision=precision,
            recompute=recompute,
        )

    def objective(candidate: DesignPoint) -> float:
        return runner.evaluate(scenario_for(candidate)).step_time

    def probe_objective(candidates: Sequence[DesignPoint]) -> Sequence[float]:
        results = runner.run((scenario_for(candidate) for candidate in candidates), capture_errors=True)
        return [float("inf") if result.error is not None else result.value.step_time for result in results]

    search = GradientDescentSearch(
        space, initial_step=0.1, min_step=0.02, max_iterations=15, batch_objective=probe_objective
    )
    result: SearchResult = search.search(objective, starting_points=[point])
    return result.best_point


def inference_memory_scaling_study(
    model: "TransformerConfig | str" = "Llama2-13B",
    gpu_counts: Sequence[int] = (2, 8),
    memory_technologies: Sequence[str] = ("GDDR6", "HBM2", "HBM2E", "HBM3", "HBM3E", "HBMX"),
    extra_points: Optional[Sequence[Dict[str, str]]] = None,
    batch_size: int = 1,
    prompt_tokens: int = 200,
    generated_tokens: int = 200,
    precision: Precision = Precision.FP16,
    base_accelerator: str = "A100",
    decode_mode: str = "average",
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Sweep DRAM technologies for multi-GPU inference (paper Fig. 9).

    The compute die is kept at the base accelerator's (A100, 7 nm) while the
    DRAM technology scales from GDDR6 up to the futuristic HBMX; intra-node
    networking is NVLink-Gen3 except for the extra HBMX-NVLink-Gen4 point.
    ``decode_mode="exact"`` prices the decode phase per token through the
    batched roofline backend instead of the average-KV closed form.
    """
    model = get_model(model) if isinstance(model, str) else model
    if extra_points is None:
        extra_points = [{"dram": "HBMX", "network": "NVLink4"}]
    base = get_accelerator(base_accelerator)
    sweep = [{"dram": tech, "network": "NVLink3"} for tech in memory_technologies]
    sweep.extend(extra_points)
    runner = runner or default_runner()

    grid = [(num_gpus, combo) for num_gpus in gpu_counts for combo in sweep]
    scenarios = []
    for num_gpus, combo in grid:
        technology = get_dram_technology(combo["dram"]).with_capacity(base.dram_capacity)
        accelerator = base.with_dram(technology, keep_capacity=True)
        system = build_system(
            accelerator,
            num_devices=num_gpus,
            intra_node=combo["network"],
            inter_node="HDR-IB",
            devices_per_node=8,
            name=f"{base.name}-{combo['dram']}-{combo['network']}",
        )
        scenarios.append(
            Scenario.inference(
                system,
                model,
                batch_size=batch_size,
                prompt_tokens=prompt_tokens,
                generated_tokens=generated_tokens,
                tensor_parallel=num_gpus,
                precision=precision,
                decode_mode=decode_mode,
            )
        )
    reports = [result.report for result in runner.run(scenarios)]
    table = SweepTable(
        {
            "dram_technology": [combo["dram"] for _, combo in grid],
            "network": [combo["network"] for _, combo in grid],
            "num_gpus": [num_gpus for num_gpus, _ in grid],
            "memory_time": [report.device_time for report in reports],
            "communication_time": [report.communication_time for report in reports],
        }
    )
    # End-to-end latency and the paper's x-axis labels, as derived columns.
    table["total_latency"] = table["memory_time"] + table["communication_time"]
    table["label"] = [f"{combo['dram']}-{combo['network']}" for _, combo in grid]
    return table


def h100_reference_latency(
    model: "TransformerConfig | str" = "Llama2-13B",
    num_gpus: int = 2,
    batch_size: int = 1,
    prompt_tokens: int = 200,
    generated_tokens: int = 200,
    precision: Precision = Precision.FP16,
    runner: Optional[SweepRunner] = None,
) -> float:
    """The H100-HBM3e reference latency drawn as a dashed line in Fig. 9."""
    runner = runner or default_runner()
    system = build_system(
        "H100",
        num_devices=num_gpus,
        intra_node="NVLink4",
        inter_node="NDR-IB",
        devices_per_node=8,
        name=f"H100x{num_gpus}",
    )
    report = runner.evaluate(
        Scenario.inference(
            system,
            model,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=num_gpus,
            precision=precision,
        )
    )
    return report.total_latency
