"""Technology-scaling case studies built on the DSE engine.

Two sweeps from the paper's case studies live here:

* :func:`technology_node_scaling_study` -- training time per iteration of the
  GPT-7B case study across logic nodes N12..N1 for different HBM generations
  and inter-node network speeds (paper Fig. 6), with the per-layer compute-
  vs-memory-bound GEMM breakdown that explains the saturation (Fig. 7).
* :func:`inference_memory_scaling_study` -- inference latency of Llama2-13B
  on 2- and 8-GPU systems as the DRAM technology scales from GDDR6 to a
  futuristic HBMX while the compute die stays at the A100's 7 nm node
  (paper Fig. 9).

Both are thin shims over their registered Study declarations
(``fig6_technology_node_scaling`` and ``fig9_memory_technology_scaling`` in
:mod:`repro.studies.paper`), so the same sweeps run from Python, from
``python -m repro run``, and share one evaluation cache: the grids expand to
:class:`~repro.sweep.scenario.Scenario` lists and evaluate through a
:class:`~repro.sweep.runner.SweepRunner`, shared sub-evaluations (e.g. the
Fig.-7 bound breakdown, which depends only on the derived accelerator, not on
the network choice) are deduplicated, and repeated calls hit the result
cache.  Results are columnar :class:`~repro.sweep.table.SweepTable` objects;
iterating still yields row views with attribute access (``row.step_time``,
``row.label``), so row-oriented consumers keep working.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..hardware.datatypes import Precision
from ..hardware.technology import NODE_ORDER
from ..hardware.uarch import ResourceBudget
from ..memmodel.activations import RecomputeStrategy
from ..models.transformer import TransformerConfig
from ..parallelism.config import ParallelismConfig
from ..studies import paper as _paper
from ..sweep import Scenario, SweepRunner, SweepTable, default_runner


def technology_node_scaling_study(
    model: "TransformerConfig | str" = "GPT-7B",
    parallelism: Optional[ParallelismConfig] = None,
    global_batch_size: int = 512,
    num_devices: int = 1024,
    nodes: Sequence[str] = tuple(NODE_ORDER),
    combinations: Optional[Sequence[Dict[str, str]]] = None,
    precision: Precision = Precision.FP16,
    recompute: RecomputeStrategy = RecomputeStrategy.SELECTIVE,
    optimize_allocation: bool = False,
    budget: Optional[ResourceBudget] = None,
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Sweep logic technology nodes for the GPT-7B training case study (Fig. 6).

    Args:
        model: Model to train (the paper uses GPT-7B).
        parallelism: Parallelism configuration; defaults to the paper's
            64-4-4-4 case-study setting.
        global_batch_size: Global batch size (512 in the paper).
        num_devices: Total GPU count (1024 in the paper).
        nodes: Logic nodes to sweep, oldest first.
        combinations: List of ``{"dram": ..., "network": ...}`` choices; the
            default reproduces the six curves of Fig. 6.
        precision: Training precision.
        recompute: Activation recomputation strategy.
        optimize_allocation: Run the per-node DSE allocation search instead of
            using the default area/power split.
        budget: Area/power budget of the derived devices.
        runner: Sweep runner to evaluate through (the shared default when
            omitted); the allocation search's gradient probes go through the
            same runner.

    Returns:
        A :class:`SweepTable` with one row per (node, dram, network)
        combination; the ``label`` column carries the paper's legend labels.
    """
    study = _paper.technology_node_scaling(
        model=model,
        parallelism=parallelism,
        global_batch_size=global_batch_size,
        num_devices=num_devices,
        nodes=nodes,
        combinations=combinations,
        precision=precision,
        recompute=recompute,
        optimize_allocation=optimize_allocation,
        budget=budget,
        runner=runner,
    )
    return study.run(runner=runner)


def inference_memory_scaling_study(
    model: "TransformerConfig | str" = "Llama2-13B",
    gpu_counts: Sequence[int] = (2, 8),
    memory_technologies: Sequence[str] = ("GDDR6", "HBM2", "HBM2E", "HBM3", "HBM3E", "HBMX"),
    extra_points: Optional[Sequence[Dict[str, str]]] = None,
    batch_size: int = 1,
    prompt_tokens: int = 200,
    generated_tokens: int = 200,
    precision: Precision = Precision.FP16,
    base_accelerator: str = "A100",
    decode_mode: str = "average",
    runner: Optional[SweepRunner] = None,
) -> SweepTable:
    """Sweep DRAM technologies for multi-GPU inference (paper Fig. 9).

    The compute die is kept at the base accelerator's (A100, 7 nm) while the
    DRAM technology scales from GDDR6 up to the futuristic HBMX; intra-node
    networking is NVLink-Gen3 except for the extra HBMX-NVLink-Gen4 point.
    ``decode_mode="exact"`` prices the decode phase per token through the
    batched roofline backend instead of the average-KV closed form.
    """
    study = _paper.inference_memory_scaling(
        model=model,
        gpu_counts=gpu_counts,
        memory_technologies=memory_technologies,
        extra_points=extra_points,
        batch_size=batch_size,
        prompt_tokens=prompt_tokens,
        generated_tokens=generated_tokens,
        precision=precision,
        base_accelerator=base_accelerator,
        decode_mode=decode_mode,
    )
    return study.run(runner=runner)


def h100_reference_latency(
    model: "TransformerConfig | str" = "Llama2-13B",
    num_gpus: int = 2,
    batch_size: int = 1,
    prompt_tokens: int = 200,
    generated_tokens: int = 200,
    precision: Precision = Precision.FP16,
    runner: Optional[SweepRunner] = None,
) -> float:
    """The H100-HBM3e reference latency drawn as a dashed line in Fig. 9."""
    from ..hardware.cluster import build_system

    runner = runner or default_runner()
    system = build_system(
        "H100",
        num_devices=num_gpus,
        intra_node="NVLink4",
        inter_node="NDR-IB",
        devices_per_node=8,
        name=f"H100x{num_gpus}",
    )
    report = runner.evaluate(
        Scenario.inference(
            system,
            model,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=num_gpus,
            precision=precision,
        )
    )
    return report.total_latency
