"""Constrained search over the design space (paper Section 3.6).

The paper's DSE solves a constrained optimization problem: find the
allocation of area/power (and the discrete technology choices) that
minimizes the execution time of a given workload under a fixed resource
budget, using a gradient-descent style search.  Because the continuous part
of our space is low-dimensional (two area fractions plus one power
fraction), a numerical-gradient coordinate descent with shrinking step sizes
is both simple and robust; discrete dimensions are handled by enumerating
the design-space grid as starting points.

Each descent iteration generates every gradient probe (both directions of
every continuous knob) up front and evaluates the uncached ones in **one**
batched call when a ``batch_objective`` is supplied -- the scaling studies
route that call through the sweep runner, which deduplicates probes and
evaluates the underlying GEMM grids through the vectorized roofline backend.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError, SearchError
from .space import DesignPoint, DesignSpace

logger = logging.getLogger(__name__)

#: Objective: maps a design point to a cost (seconds); lower is better.
Objective = Callable[[DesignPoint], float]
#: Batched objective: maps a list of design points to one cost each; returns
#: ``float("inf")`` for infeasible points instead of raising.
BatchObjective = Callable[[Sequence[DesignPoint]], Sequence[float]]


@dataclasses.dataclass(frozen=True)
class EvaluationRecord:
    """One cached objective evaluation.

    Attributes:
        cost: Objective value; infinity for infeasible points.
        error: The library error that made the point infeasible, if any.
    """

    cost: float
    error: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """Whether the evaluation produced a finite cost."""
        return self.error is None and self.cost != float("inf")


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Outcome of one design-space search.

    Attributes:
        best_point: The best feasible design point found.
        best_cost: Its objective value (execution time in seconds).
        evaluations: Number of objective evaluations performed.
        history: ``(cost, point)`` pairs recorded after each improvement.
    """

    best_point: DesignPoint
    best_cost: float
    evaluations: int
    history: Tuple[Tuple[float, DesignPoint], ...] = ()

    def summary(self) -> Dict[str, object]:
        """Flat summary for reports."""
        return {
            "best_cost": self.best_cost,
            "evaluations": self.evaluations,
            "technology_node": self.best_point.technology_node,
            "dram_technology": self.best_point.dram_technology,
            "inter_node_network": self.best_point.inter_node_network,
            "compute_area_fraction": round(self.best_point.compute_area_fraction, 3),
            "l2_area_fraction": round(self.best_point.l2_area_fraction, 3),
        }


class GradientDescentSearch:
    """Coordinate descent with numerical gradients over the continuous knobs.

    Attributes:
        space: The design space providing bounds and clipping.
        initial_step: Initial step size applied to the area fractions.
        min_step: Search terminates once the step shrinks below this value.
        max_iterations: Hard cap on descent iterations per starting point.
        batch_objective: Optional vectorized objective; when given, every
            descent iteration evaluates its uncached gradient probes in one
            call instead of one objective call per probe.  Must return
            ``float("inf")`` for infeasible points instead of raising.

    Every iteration generates all (at most six) gradient probes up front and
    moves to the best strictly-improving one.  This eager probing is what the
    batched call needs, and it is applied in the serial path too -- on
    purpose, so the descent trajectory is identical with and without a batch
    objective (the probe cache keeps re-visited points free either way).
    """

    def __init__(
        self,
        space: DesignSpace,
        initial_step: float = 0.10,
        min_step: float = 0.01,
        max_iterations: int = 40,
        batch_objective: Optional[BatchObjective] = None,
    ):
        self.space = space
        self.initial_step = initial_step
        self.min_step = min_step
        self.max_iterations = max_iterations
        self.batch_objective = batch_objective

    # -- internals --------------------------------------------------------------

    def _evaluate(
        self, objective: Objective, point: DesignPoint, cache: Dict[DesignPoint, EvaluationRecord]
    ) -> float:
        # DesignPoint is frozen and hashable, so it keys the cache directly;
        # infeasible points are recorded structurally instead of via string
        # sentinels, keeping the evaluation count honest.
        record = cache.get(point)
        if record is None:
            try:
                record = EvaluationRecord(cost=float(objective(point)))
            except ReproError as error:
                # Only the library's own errors mark a point infeasible; a
                # genuine bug in the objective (TypeError, ...) still raises.
                logger.debug("design point %s infeasible: %s", point.label, error)
                record = EvaluationRecord(cost=float("inf"), error=str(error))
            cache[point] = record
        return record.cost

    def _evaluate_probes(
        self,
        objective: Objective,
        probes: List[DesignPoint],
        cache: Dict[DesignPoint, EvaluationRecord],
    ) -> None:
        """Evaluate the uncached probes, batched when a batch objective exists."""
        pending = [probe for probe in dict.fromkeys(probes) if probe not in cache]
        if not pending:
            return
        if self.batch_objective is None:
            for probe in pending:
                self._evaluate(objective, probe, cache)
            return
        costs = list(self.batch_objective(pending))
        if len(costs) != len(pending):
            raise SearchError(
                f"batch objective returned {len(costs)} costs for {len(pending)} design points"
            )
        for probe, cost in zip(pending, costs):
            cache[probe] = EvaluationRecord(cost=float(cost))

    def _descend(
        self,
        objective: Objective,
        start: DesignPoint,
        cache: Dict[DesignPoint, EvaluationRecord],
    ) -> Tuple[DesignPoint, float, List[Tuple[float, DesignPoint]]]:
        point = self.space.clip(start)
        cost = self._evaluate(objective, point, cache)
        history: List[Tuple[float, DesignPoint]] = [(cost, point)]
        step = self.initial_step
        knobs = ("compute_area_fraction", "l2_area_fraction", "compute_power_fraction")
        iteration = 0
        while step >= self.min_step and iteration < self.max_iterations:
            iteration += 1
            # Generate every gradient probe of this iteration up front and
            # evaluate the uncached ones in one batched call, then move to
            # the best strictly-improving probe (or shrink the step).
            probes = []
            for knob in knobs:
                current_value = getattr(point, knob)
                for direction in (+1.0, -1.0):
                    candidate = self.space.clip(point.perturbed(**{knob: current_value + direction * step}))
                    if candidate != point:
                        probes.append(candidate)
            self._evaluate_probes(objective, probes, cache)
            best_candidate: Optional[DesignPoint] = None
            best_cost = cost
            for candidate in probes:
                candidate_cost = self._evaluate(objective, candidate, cache)
                if candidate_cost < best_cost:
                    best_candidate, best_cost = candidate, candidate_cost
            if best_candidate is not None:
                point, cost = best_candidate, best_cost
                history.append((cost, point))
            else:
                step /= 2.0
        return point, cost, history

    # -- public API ----------------------------------------------------------------

    def search(
        self,
        objective: Objective,
        starting_points: Optional[List[DesignPoint]] = None,
    ) -> SearchResult:
        """Run the search and return the best feasible design point.

        Args:
            objective: Cost function; may raise a :class:`~repro.errors.ReproError`
                (e.g. :class:`~repro.errors.MemoryCapacityError`) for
                infeasible points, which are treated as infinitely expensive.
                Any other exception type is considered a bug in the objective
                and propagates.
            starting_points: Starting points (defaults to a coarse grid over
                the discrete choices of the space).

        Raises:
            SearchError: When no feasible point is found.
        """
        cache: Dict[DesignPoint, EvaluationRecord] = {}
        starts = starting_points if starting_points is not None else self.space.grid(fraction_steps=2)
        if not starts:
            raise SearchError("no starting points to search from")
        best_point: Optional[DesignPoint] = None
        best_cost = float("inf")
        full_history: List[Tuple[float, DesignPoint]] = []
        for start in starts:
            if not self.space.contains(start):
                continue
            point, cost, history = self._descend(objective, start, cache)
            full_history.extend(history)
            if cost < best_cost:
                best_point, best_cost = point, cost
        evaluations = len(cache)
        if best_point is None or best_cost == float("inf"):
            raise SearchError("design-space search found no feasible design point")
        return SearchResult(
            best_point=best_point,
            best_cost=best_cost,
            evaluations=evaluations,
            history=tuple(full_history),
        )


def optimize_allocation(
    objective: Objective,
    space: Optional[DesignSpace] = None,
    base_point: Optional[DesignPoint] = None,
    batch_objective: Optional[BatchObjective] = None,
) -> SearchResult:
    """Optimize only the continuous allocation knobs around ``base_point``.

    This is the per-technology-node optimization the scaling study performs:
    for a fixed node / memory / network choice, find the best area/power split.
    """
    space = space or DesignSpace()
    base = base_point or DesignPoint()
    search = GradientDescentSearch(space, batch_objective=batch_objective)
    return search.search(objective, starting_points=[base])
