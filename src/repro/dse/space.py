"""Design space definition for the DSE engine (paper Section 3.6).

A design point couples a logic technology node, an off-chip memory
technology, intra-/inter-node network technologies, and the allocation of
the silicon budget (area/power fractions) between the compute array and the
last-level cache.  The µArch engine turns a design point into an
:class:`~repro.hardware.accelerator.AcceleratorSpec`; the performance model
then scores it on a workload, and the search of :mod:`repro.dse.search`
walks the space looking for the fastest feasible point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..hardware.accelerator import AcceleratorSpec
from ..hardware.cluster import SystemSpec, build_system
from ..hardware.memory import get_dram_technology
from ..hardware.network import get_interconnect
from ..hardware.technology import get_node
from ..hardware.uarch import MicroArchitecture, ResourceAllocation, ResourceBudget


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One candidate design in the exploration space.

    Attributes:
        technology_node: Logic node name (``"N7"``, ``"N3"``, ...).
        dram_technology: Off-chip memory technology name (``"HBM3"``, ...).
        intra_node_network: Intra-node fabric name.
        inter_node_network: Inter-node fabric name.
        compute_area_fraction: Fraction of die area given to the compute array.
        l2_area_fraction: Fraction of die area given to the last-level cache.
        compute_power_fraction: Fraction of board power given to compute.
        supports_fp8: Whether the derived device has an FP8 matrix path.
        supports_fp4: Whether the derived device has an FP4 matrix path.
    """

    technology_node: str = "N7"
    dram_technology: str = "HBM2E"
    intra_node_network: str = "NVLink3"
    inter_node_network: str = "NDR-x8"
    compute_area_fraction: float = 0.60
    l2_area_fraction: float = 0.15
    compute_power_fraction: float = 0.65
    supports_fp8: bool = False
    supports_fp4: bool = False

    def allocation(self) -> ResourceAllocation:
        """The µArch allocation implied by this design point."""
        return ResourceAllocation(
            compute_area_fraction=self.compute_area_fraction,
            l2_area_fraction=self.l2_area_fraction,
            compute_power_fraction=self.compute_power_fraction,
        )

    def build_accelerator(self, budget: Optional[ResourceBudget] = None, name: Optional[str] = None) -> AcceleratorSpec:
        """Derive the accelerator for this design point under ``budget``."""
        uarch = MicroArchitecture(
            node=get_node(self.technology_node),
            budget=budget or ResourceBudget(),
            allocation=self.allocation(),
            dram=get_dram_technology(self.dram_technology),
            supports_fp8=self.supports_fp8,
            supports_fp4=self.supports_fp4,
        )
        return uarch.derive_accelerator(name=name or self.label)

    def build_system(
        self,
        num_devices: int,
        devices_per_node: int = 8,
        budget: Optional[ResourceBudget] = None,
        name: Optional[str] = None,
    ) -> SystemSpec:
        """Build the full multi-device system for this design point."""
        accelerator = self.build_accelerator(budget=budget)
        return build_system(
            accelerator,
            num_devices=num_devices,
            intra_node=self.intra_node_network,
            inter_node=self.inter_node_network,
            devices_per_node=devices_per_node,
            name=name or self.label,
        )

    @property
    def label(self) -> str:
        """Short human-readable label for reports."""
        return f"{self.technology_node}-{self.dram_technology}-{self.inter_node_network}"

    def perturbed(self, **changes: object) -> "DesignPoint":
        """Return a copy with some fields replaced (used by the search)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        """Flat dict view for logging."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """Bounds and discrete choices of the exploration.

    Attributes:
        technology_nodes: Candidate logic nodes.
        dram_technologies: Candidate off-chip memory technologies.
        inter_node_networks: Candidate inter-node fabrics.
        intra_node_networks: Candidate intra-node fabrics.
        area_fraction_bounds: Bounds of the compute-area fraction.
        l2_fraction_bounds: Bounds of the L2-area fraction.
        budget: Fixed area/power budget all candidates share.
    """

    technology_nodes: Tuple[str, ...] = ("N12", "N10", "N7", "N5", "N3", "N2", "N1")
    dram_technologies: Tuple[str, ...] = ("HBM2", "HBM2E", "HBM3", "HBM4")
    inter_node_networks: Tuple[str, ...] = ("NDR-x8", "XDR-x8", "GDR-x8")
    intra_node_networks: Tuple[str, ...] = ("NVLink3",)
    area_fraction_bounds: Tuple[float, float] = (0.30, 0.80)
    l2_fraction_bounds: Tuple[float, float] = (0.05, 0.35)
    budget: ResourceBudget = dataclasses.field(default_factory=ResourceBudget)

    def __post_init__(self) -> None:
        for name in self.technology_nodes:
            get_node(name)
        for name in self.dram_technologies:
            get_dram_technology(name)
        for name in self.inter_node_networks + self.intra_node_networks:
            get_interconnect(name)
        if not 0 < self.area_fraction_bounds[0] < self.area_fraction_bounds[1] < 1:
            raise ConfigurationError("invalid area fraction bounds")
        if not 0 < self.l2_fraction_bounds[0] < self.l2_fraction_bounds[1] < 1:
            raise ConfigurationError("invalid L2 fraction bounds")

    def clip(self, point: DesignPoint) -> DesignPoint:
        """Clip a point's continuous knobs into the space's bounds."""
        compute = min(max(point.compute_area_fraction, self.area_fraction_bounds[0]), self.area_fraction_bounds[1])
        l2 = min(max(point.l2_area_fraction, self.l2_fraction_bounds[0]), self.l2_fraction_bounds[1])
        if compute + l2 >= 0.95:
            l2 = max(self.l2_fraction_bounds[0], 0.95 - compute - 0.01)
        return point.perturbed(compute_area_fraction=compute, l2_area_fraction=l2)

    def contains(self, point: DesignPoint) -> bool:
        """Whether a point's discrete choices belong to this space."""
        return (
            point.technology_node in self.technology_nodes
            and point.dram_technology in self.dram_technologies
            and point.inter_node_network in self.inter_node_networks
            and point.intra_node_network in self.intra_node_networks
        )

    def grid(self, fraction_steps: int = 3) -> List[DesignPoint]:
        """A coarse grid over the space, useful for seeding the search."""
        lo, hi = self.area_fraction_bounds
        fractions = [lo + (hi - lo) * i / max(1, fraction_steps - 1) for i in range(fraction_steps)]
        points: List[DesignPoint] = []
        for node in self.technology_nodes:
            for dram in self.dram_technologies:
                for network in self.inter_node_networks:
                    for fraction in fractions:
                        points.append(
                            self.clip(
                                DesignPoint(
                                    technology_node=node,
                                    dram_technology=dram,
                                    inter_node_network=network,
                                    intra_node_network=self.intra_node_networks[0],
                                    compute_area_fraction=fraction,
                                )
                            )
                        )
        return points
