"""End-to-end training-step time prediction.

The model composes the pieces built elsewhere in the package:

1. the :class:`~repro.parallelism.mapper.ParallelizationMapper` turns the
   (model, parallelism, batch) triple into a per-stage micro-batch workload,
2. the device kernel model prices every forward/backward kernel of one layer,
3. the collective model prices the tensor-parallel, pipeline-parallel, and
   data-parallel communication,
4. the pipeline schedule adds its bubble and the optimizer adds the weight
   update, and the activation-recomputation strategy adds its forward replay.

The resulting :class:`~repro.core.reports.TrainingReport` carries the same
compute / communication / other decomposition the paper uses in its
GPU-generation scaling study (Fig. 5) and the validation table (Table 1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..comm.fabric import CollectiveModel, shared_collective_model
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..memmodel.activations import ActivationModel, RecomputeStrategy
from ..memmodel.footprint import training_memory_breakdown
from ..models.transformer import TransformerConfig
from ..parallelism.config import ParallelismConfig
from ..parallelism.mapper import DistributedTrainingPlan, ParallelizationMapper
from ..perf.kernels import DeviceKernelModel
from ..perf.roofline import BoundType
from ..workload.operators import CollectiveKind, CommunicationOp, GEMM
from ..workload.training import TrainingMicrobatchSpec
from ..workload.transformer_layer import TransformerLayerBuilder
from .reports import KernelTimeEntry, TrainingReport

#: Bytes the optimizer touches per parameter during the update step:
#: read FP16 gradient (2) + read/write FP32 master weight (8) + read/write the
#: two Adam moments (16) + write the FP16 weight copy (2).
OPTIMIZER_BYTES_PER_PARAMETER = 28.0


@dataclasses.dataclass
class TrainingPerformanceModel:
    """Predicts the training-step time of an LLM on a distributed system.

    Attributes:
        system: The hardware system.
        kernel_model: Device-level kernel timing model; built from the
            system's accelerator when not supplied.
        collective_model: Communication pricing model; built from the system
            when not supplied.
        overlap_dp_communication: Fraction of the data-parallel gradient
            all-reduce hidden behind the backward pass.  The paper's
            analytical model adds communication serially, so the default is
            fully exposed (0.0); set it higher to model gradient-reduction
            overlap.
    """

    system: SystemSpec
    kernel_model: Optional[DeviceKernelModel] = None
    collective_model: Optional[CollectiveModel] = None
    overlap_dp_communication: float = 0.0

    def __post_init__(self) -> None:
        if self.kernel_model is None:
            self.kernel_model = DeviceKernelModel(accelerator=self.system.accelerator)
        if self.collective_model is None:
            self.collective_model = shared_collective_model(self.system)
        self._mapper = ParallelizationMapper(self.system)

    # -- helpers -----------------------------------------------------------------

    def _layer_kernel_times(self, spec: TrainingMicrobatchSpec) -> Dict[str, object]:
        """Time the forward and backward kernels of one transformer layer."""
        builder = TransformerLayerBuilder(spec.layer_spec())
        forward_entries: List[KernelTimeEntry] = []
        backward_entries: List[KernelTimeEntry] = []
        forward_time = 0.0
        backward_time = 0.0
        for op in builder.forward_compute_ops():
            point = self.kernel_model.evaluate(op)
            time = self.kernel_model.time(op)
            forward_time += time
            forward_entries.append(
                KernelTimeEntry(
                    name=op.name,
                    time=time,
                    count=1,
                    bound=point.bound,
                    flops=op.flops,
                    bytes_moved=point.level_bytes.get("DRAM", op.bytes_total),
                )
            )
        for op in builder.backward_compute_ops():
            point = self.kernel_model.evaluate(op)
            time = self.kernel_model.time(op)
            backward_time += time
            backward_entries.append(
                KernelTimeEntry(
                    name=op.name,
                    time=time,
                    count=1,
                    bound=point.bound,
                    flops=op.flops,
                    bytes_moved=point.level_bytes.get("DRAM", op.bytes_total),
                )
            )
        return {
            "forward_time": forward_time,
            "backward_time": backward_time,
            "forward_entries": forward_entries,
            "backward_entries": backward_entries,
            "builder": builder,
        }

    def _tp_communication_per_layer(self, builder: TransformerLayerBuilder, scope: str) -> float:
        """Tensor-parallel collective time of one layer, forward plus backward."""
        total = 0.0
        for op in builder.forward_communication(scope=scope):
            total += self.collective_model.time(op)
        for op in builder.backward_communication(scope=scope):
            total += self.collective_model.time(op)
        return total

    def _lm_head_gemm(self, spec: TrainingMicrobatchSpec) -> Optional[GEMM]:
        """The LM-head GEMM, or ``None`` when this stage does not host it."""
        if not spec.include_embedding:
            return None
        vocab_per_rank = max(1, spec.model.vocab_size // spec.tensor_parallel)
        return GEMM(
            name="lm_head",
            precision=spec.precision,
            m=spec.micro_batch * spec.seq_len,
            n=vocab_per_rank,
            k=spec.model.hidden_size,
            weight_operand=True,
        )

    def _lm_head_time(self, spec: TrainingMicrobatchSpec) -> float:
        """Forward + backward time of the LM-head GEMM when the stage hosts it."""
        head = self._lm_head_gemm(spec)
        if head is None:
            return 0.0
        # Forward plus the two backward GEMMs of the same FLOP count.
        return 3.0 * self.kernel_model.time(head)

    def _pipeline_op(self, plan: DistributedTrainingPlan) -> Optional[CommunicationOp]:
        """The per-micro-batch pipeline send, or ``None`` without pipelining."""
        if plan.parallelism.pipeline_parallel == 1:
            return None
        return CommunicationOp(
            name="pp_p2p",
            collective=CollectiveKind.POINT_TO_POINT,
            data_bytes=plan.pipeline_p2p_bytes_per_microbatch,
            group_size=2,
            scope=plan.pp_scope,
        )

    def _pipeline_communication(self, plan: DistributedTrainingPlan) -> float:
        """Total exposed pipeline point-to-point time per training step."""
        op = self._pipeline_op(plan)
        if op is None:
            return 0.0
        return self.collective_model.time(op) * plan.num_microbatches

    def _dp_op(self, plan: DistributedTrainingPlan) -> Optional[CommunicationOp]:
        """The gradient all-reduce, or ``None`` when DP needs no reduction."""
        dp_plan = plan.data_parallel_plan
        if not dp_plan.requires_all_reduce:
            return None
        return CommunicationOp(
            name="dp_grad_all_reduce",
            collective=CollectiveKind.ALL_REDUCE,
            data_bytes=dp_plan.gradient_bytes,
            group_size=dp_plan.data_parallel,
            scope=plan.dp_scope,
        )

    def _dp_communication(self, plan: DistributedTrainingPlan) -> float:
        """Exposed data-parallel gradient all-reduce time per training step."""
        op = self._dp_op(plan)
        if op is None:
            return 0.0
        exposed = 1.0 - self.overlap_dp_communication
        return self.collective_model.time(op) * exposed

    def _weight_update_time(self, plan: DistributedTrainingPlan) -> float:
        """Optimizer (Adam) update time: a DRAM-streaming pass over the states."""
        params = plan.parameters_per_device
        dram = self.system.accelerator.memory.dram
        return params * OPTIMIZER_BYTES_PER_PARAMETER / (dram.bandwidth * dram.utilization)

    # -- main entry point -----------------------------------------------------------

    def predict(
        self,
        model: TransformerConfig,
        parallelism: ParallelismConfig,
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: Precision = Precision.FP16,
        recompute: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
    ) -> TrainingReport:
        """Predict the time of one training step (one global batch).

        Args:
            model: The transformer architecture to train.
            parallelism: DP/TP/PP/SP configuration.
            global_batch_size: Global batch size in sequences.
            seq_len: Sequence length (defaults to the model maximum).
            precision: Training compute precision.
            recompute: Activation recomputation strategy.
        """
        recompute = RecomputeStrategy.parse(recompute)
        plan = self._mapper.plan_training(
            model,
            parallelism,
            global_batch_size=global_batch_size,
            seq_len=seq_len,
            precision=precision,
        )
        spec = plan.microbatch_spec
        layers_per_stage = parallelism.layers_per_stage(model)

        layer_times = self._layer_kernel_times(spec)
        builder: TransformerLayerBuilder = layer_times["builder"]  # type: ignore[assignment]
        forward_layer = layer_times["forward_time"]  # type: ignore[assignment]
        backward_layer = layer_times["backward_time"]  # type: ignore[assignment]

        tp_comm_layer = self._tp_communication_per_layer(builder, plan.tp_scope)
        lm_head_time = self._lm_head_time(spec)

        # Per-micro-batch, per-stage times.
        compute_per_microbatch = (forward_layer + backward_layer) * layers_per_stage + lm_head_time
        tp_comm_per_microbatch = tp_comm_layer * layers_per_stage

        # Activation recomputation replays (part of) the forward pass before backward.
        activation_model = ActivationModel(
            model=model,
            micro_batch=parallelism.micro_batch_size,
            seq_len=plan.seq_len,
            tensor_parallel=parallelism.tensor_parallel,
            sequence_parallel=parallelism.sequence_parallel,
            precision=precision,
        )
        recompute_fraction = activation_model.recompute_flops_overhead(recompute)
        recompute_per_microbatch = recompute_fraction * forward_layer * layers_per_stage

        microbatches = plan.num_microbatches
        compute_time = compute_per_microbatch * microbatches
        recompute_time = recompute_per_microbatch * microbatches
        tp_comm_time = tp_comm_per_microbatch * microbatches

        # The bubble applies to everything that streams through the pipeline.
        ideal_pipeline_time = compute_time + recompute_time + tp_comm_time
        bubble_time = plan.pipeline.bubble_fraction * ideal_pipeline_time

        pp_comm_time = self._pipeline_communication(plan)
        dp_comm_time = self._dp_communication(plan)
        weight_update_time = self._weight_update_time(plan)

        memory = training_memory_breakdown(
            model,
            parallelism,
            global_batch_size=global_batch_size,
            seq_len=plan.seq_len,
            precision=precision,
            strategy=recompute,
        )

        # Aggregate the per-layer kernel entries over layers and micro-batches.
        kernel_entries: List[KernelTimeEntry] = []
        repeats = layers_per_stage * microbatches
        for entry in layer_times["forward_entries"] + layer_times["backward_entries"]:  # type: ignore[operator]
            kernel_entries.append(dataclasses.replace(entry, count=repeats))

        return TrainingReport(
            model_name=model.name,
            system_name=self.system.name,
            parallelism_label=parallelism.label,
            global_batch_size=global_batch_size,
            seq_len=plan.seq_len,
            recompute_strategy=recompute.value,
            compute_time=compute_time,
            recompute_time=recompute_time,
            tp_communication_time=tp_comm_time,
            pp_communication_time=pp_comm_time,
            dp_communication_time=dp_comm_time,
            bubble_time=bubble_time,
            weight_update_time=weight_update_time,
            memory=memory,
            kernel_breakdown=kernel_entries,
        )

    def predict_queries(
        self,
        model: TransformerConfig,
        parallelism: ParallelismConfig,
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: Precision = Precision.FP16,
        recompute: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
    ) -> Tuple[List[GEMM], List[CommunicationOp]]:
        """The GEMM and collective queries one :meth:`predict` call prices.

        The sweep batch planner (:mod:`repro.sweep.batchplan`) uses this to
        collect every kernel/collective query of a whole generation of
        training scenarios, price each family in one vectorized call, seed
        the shared memos, and then re-run :meth:`predict` warm.  The op
        construction goes through the same helpers :meth:`predict` uses, so
        the two can not drift apart.  Raises the same mapping/configuration
        errors :meth:`predict` raises while building the plan.

        Returns ``(gemms, comm_ops)``; trivial collectives (which the
        collective model prices as zero without touching its memo) are
        dropped.
        """
        plan = self._mapper.plan_training(
            model,
            parallelism,
            global_batch_size=global_batch_size,
            seq_len=seq_len,
            precision=precision,
        )
        spec = plan.microbatch_spec
        builder = TransformerLayerBuilder(spec.layer_spec())
        gemms = [op for op in builder.forward_compute_ops() if isinstance(op, GEMM)]
        gemms += [op for op in builder.backward_compute_ops() if isinstance(op, GEMM)]
        head = self._lm_head_gemm(spec)
        if head is not None:
            gemms.append(head)
        comm_ops = list(builder.forward_communication(scope=plan.tp_scope))
        comm_ops += builder.backward_communication(scope=plan.tp_scope)
        pp_op = self._pipeline_op(plan)
        if pp_op is not None:
            comm_ops.append(pp_op)
        dp_op = self._dp_op(plan)
        if dp_op is not None:
            comm_ops.append(dp_op)
        return gemms, [op for op in comm_ops if not op.is_trivial]

    # -- auxiliary analyses ------------------------------------------------------------

    def gemm_bound_breakdown(
        self,
        model: TransformerConfig,
        parallelism: ParallelismConfig,
        seq_len: Optional[int] = None,
        precision: Precision = Precision.FP16,
    ) -> Dict[str, float]:
        """Split one layer's forward GEMM time into compute- vs memory-bound parts.

        This powers the technology-node bound-breakdown study (paper Fig. 7).
        """
        spec = TrainingMicrobatchSpec(
            model=model,
            micro_batch=parallelism.micro_batch_size,
            seq_len=model.max_seq_len if seq_len is None else seq_len,
            layers_per_stage=1,
            tensor_parallel=parallelism.tensor_parallel,
            sequence_parallel=parallelism.sequence_parallel,
            precision=precision,
        )
        builder = TransformerLayerBuilder(spec.layer_spec())
        compute_bound = 0.0
        memory_bound = 0.0
        for gemm in builder.forward_gemms():
            point = self.kernel_model.gemm_model.evaluate(gemm)
            if point.bound is BoundType.COMPUTE:
                compute_bound += point.time
            else:
                memory_bound += point.time
        return {"compute_bound": compute_bound, "memory_bound": memory_bound}
