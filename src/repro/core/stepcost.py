"""Step-cost API: price one prefill or one decode step of an inference engine.

This module is the reusable pricing core that both the end-to-end
:class:`~repro.core.inference.InferencePerformanceModel` and the serving
simulator (:mod:`repro.serving`) are built on.  It answers two questions
directly:

* **What does one prefill over this set of prompt lengths cost?**
  (:meth:`StepCostModel.prefill_step`) -- a continuous-batching engine packs
  the admitted prompts into one forward pass: the weight GEMMs see the
  *total* token count, while attention stays per-sequence.
* **What does one decode step over this mixed batch of per-request KV
  lengths cost?** (:meth:`StepCostModel.decode_step`) -- one token per
  request through the weight GEMMs, plus one attention-scores/context GEMM
  pair per request at its own KV-cache length.

Both questions are evaluated in **one** call through the vectorized roofline
backend (:meth:`GemmTimeModel.evaluate_many
<repro.perf.gemm.GemmTimeModel.evaluate_many>` /
:mod:`repro.perf.batched`), which is what makes a discrete-event serving
simulation over thousands of steps tractable.

The module also hosts the phase-report builders
(:meth:`StepCostModel.phase_report`, :meth:`StepCostModel.decode_report_exact`)
that :meth:`InferencePerformanceModel.predict
<repro.core.inference.InferencePerformanceModel.predict>` is reimplemented on
top of; their numbers are bit-identical to the pre-refactor scalar path
(pinned by ``tests/core/test_inference_golden.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..comm.collectives import CollectiveAlgorithm
from ..comm.fabric import CollectiveModel
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from ..perf.kernels import DeviceKernelModel
from ..perf.roofline import BoundType
from ..workload.inference import InferencePhaseSpec
from ..workload.operators import GEMM, Operator
from ..workload.transformer_layer import LayerExecutionSpec, TransformerLayerBuilder
from .reports import KernelTimeEntry, PhaseReport


@dataclasses.dataclass(frozen=True)
class StepCost:
    """Cost of one engine step (a prefill or a decode iteration).

    Attributes:
        device_time: On-device kernel time of the step, in seconds.
        communication_time: Tensor-parallel collective time of the step.
        compute_bound_time: GEMM time spent in compute-bound kernels.
        memory_bound_time: GEMM time spent in memory/cache-bound kernels.
        num_requests: Requests processed by the step.
        tokens: Query tokens processed by the step (total prompt tokens for a
            prefill, one per request for a decode step).
    """

    device_time: float
    communication_time: float
    compute_bound_time: float
    memory_bound_time: float
    num_requests: int = 0
    tokens: int = 0

    @property
    def total_time(self) -> float:
        """Wall-clock time of the step: device kernels plus communication."""
        return self.device_time + self.communication_time

    @property
    def is_idle(self) -> bool:
        """Whether the step priced no work at all."""
        return self.num_requests == 0


ZERO_STEP = StepCost(0.0, 0.0, 0.0, 0.0)


@dataclasses.dataclass
class StepCostModel:
    """Prices individual inference-engine steps on one system.

    Attributes:
        system: The hardware system; steps use ``tensor_parallel`` of its
            devices.
        kernel_model: Device kernel timing model (defaults to the system's
            accelerator with standard GEMV utilization).
        collective_model: Communication model; defaults to the double-binary-
            tree algorithm, the latency-optimal choice for the small messages
            of the decode phase.
    """

    system: SystemSpec
    kernel_model: Optional[DeviceKernelModel] = None
    collective_model: Optional[CollectiveModel] = None

    def __post_init__(self) -> None:
        if self.kernel_model is None:
            self.kernel_model = DeviceKernelModel(accelerator=self.system.accelerator)
        if self.collective_model is None:
            self.collective_model = CollectiveModel(
                system=self.system,
                algorithm=CollectiveAlgorithm.DOUBLE_BINARY_TREE,
            )
        # Per-shape operator lists and per-layer collective times recur across
        # thousands of simulation steps; memoizing them keeps the
        # discrete-event loop allocation-light.
        self._attention_ops_cache: Dict[Tuple, Tuple[Operator, ...]] = {}
        self._token_ops_cache: Dict[Tuple, Tuple[Operator, ...]] = {}
        self._comm_time_cache: Dict[Tuple, float] = {}

    def tp_scope(self, tensor_parallel: int) -> str:
        """Collective scope of a TP group of the given size on this system."""
        return "intra_node" if tensor_parallel <= self.system.devices_per_node else "inter_node"

    # -- phase reports (the InferencePerformanceModel backend) -------------------------

    def phase_report(
        self,
        name: str,
        builder: TransformerLayerBuilder,
        num_layers: int,
        lm_head: Optional[GEMM],
        repeats: int,
        tp_scope: str,
    ) -> PhaseReport:
        """Price one phase: ``repeats`` executions of ``num_layers`` layers."""
        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        entries: List[KernelTimeEntry] = []
        for op in builder.forward_compute_ops():
            point = self.kernel_model.evaluate(op)
            time = point.time + self.kernel_model.overhead(op)
            device_time += time * num_layers
            if isinstance(op, GEMM):
                if point.bound is BoundType.COMPUTE:
                    compute_bound_time += point.time * num_layers
                else:
                    memory_bound_time += point.time * num_layers
            entries.append(
                KernelTimeEntry(
                    name=op.name,
                    time=time,
                    count=num_layers * repeats,
                    bound=point.bound,
                    flops=op.flops,
                    bytes_moved=point.level_bytes.get("DRAM", op.bytes_total),
                )
            )
        communication_time = 0.0
        for comm in builder.forward_communication(scope=tp_scope):
            communication_time += self.collective_model.time(comm) * num_layers
        if lm_head is not None:
            head_point, head_time, entry = self.lm_head_entry(lm_head, count=repeats)
            device_time += head_time
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time
            else:
                memory_bound_time += head_point.time
            entries.append(entry)
        return PhaseReport(
            name=name,
            device_time=device_time * repeats,
            communication_time=communication_time * repeats,
            compute_bound_time=compute_bound_time * repeats,
            memory_bound_time=memory_bound_time * repeats,
            kernel_breakdown=entries,
        )

    def lm_head_entry(self, lm_head: GEMM, count: int):
        """Price the logits GEMM once and shape its breakdown entry.

        Shared by the average and exact decode paths (the lm_head cost does
        not depend on the KV length); callers scale the returned times by
        their own repeat count.
        """
        head_point = self.kernel_model.evaluate(lm_head)
        head_time = head_point.time + self.kernel_model.overhead(lm_head)
        entry = KernelTimeEntry(
            name=lm_head.name,
            time=head_time,
            count=count,
            bound=head_point.bound,
            flops=lm_head.flops,
            bytes_moved=head_point.level_bytes.get("DRAM", lm_head.bytes_total),
        )
        return head_point, head_time, entry

    def decode_report_exact(
        self,
        spec: InferencePhaseSpec,
        num_layers: int,
        lm_head: Optional[GEMM],
        tp_scope: str,
    ) -> PhaseReport:
        """Price the decode phase with every token at its true KV length.

        The KV-cache grows from ``prompt_len`` to ``prompt_len + T - 1`` over
        the ``T`` generated tokens, so the per-token operator lists differ
        only in the KV-dependent kernels (attention scores/context, softmax).
        All GEMMs of all steps are evaluated in **one** call through the
        vectorized roofline backend; the kernel breakdown reports the mean
        per-invocation time (so ``entry.time * entry.count`` stays the exact
        phase total) and the bound type of the median-KV step.
        """
        steps = max(0, spec.generated_tokens)
        if steps == 0:
            return PhaseReport(
                name="decode",
                device_time=0.0,
                communication_time=0.0,
                compute_bound_time=0.0,
                memory_bound_time=0.0,
                kernel_breakdown=[],
            )
        builders = [
            TransformerLayerBuilder(spec.decode_layer_spec(spec.prompt_len + step))
            for step in range(steps)
        ]
        step_ops = [builder.forward_compute_ops() for builder in builders]
        # One batched evaluation warms the kernel memo for every GEMM of every
        # step; the per-slot loop below then only takes cache hits.
        self.kernel_model.gemm_model.evaluate_many(
            [op for ops in step_ops for op in ops if isinstance(op, GEMM)]
        )

        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        entries: List[KernelTimeEntry] = []
        median_step = steps // 2
        for slot in zip(*step_ops):
            overhead = self.kernel_model.overhead(slot[0])
            points = [self.kernel_model.evaluate(op) for op in slot]
            slot_kernel_time = sum(point.time for point in points)
            slot_time = slot_kernel_time + overhead * steps
            device_time += slot_time * num_layers
            if isinstance(slot[0], GEMM):
                slot_compute = sum(point.time for point in points if point.bound is BoundType.COMPUTE)
                compute_bound_time += slot_compute * num_layers
                memory_bound_time += (slot_kernel_time - slot_compute) * num_layers
            entries.append(
                KernelTimeEntry(
                    name=slot[0].name,
                    time=slot_time / steps,
                    count=num_layers * steps,
                    bound=points[median_step].bound,
                    flops=sum(op.flops for op in slot) / steps,
                    bytes_moved=sum(
                        point.level_bytes.get("DRAM", op.bytes_total) for op, point in zip(slot, points)
                    )
                    / steps,
                )
            )
        communication_time = 0.0
        for comm in builders[0].forward_communication(scope=tp_scope):
            communication_time += self.collective_model.time(comm) * num_layers
        communication_time *= steps
        if lm_head is not None:
            head_point, head_time, entry = self.lm_head_entry(lm_head, count=steps)
            device_time += head_time * steps
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time * steps
            else:
                memory_bound_time += head_point.time * steps
            entries.append(entry)
        return PhaseReport(
            name="decode",
            device_time=device_time,
            communication_time=communication_time,
            compute_bound_time=compute_bound_time,
            memory_bound_time=memory_bound_time,
            kernel_breakdown=entries,
        )

    def lm_head_gemm(self, spec: InferencePhaseSpec) -> Optional[GEMM]:
        """The logits GEMM of one phase (one query token per request)."""
        if not spec.include_lm_head:
            return None
        return self._lm_head(spec.model, spec.batch_size, spec.tensor_parallel, spec.precision)

    def _lm_head(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> GEMM:
        vocab_per_rank = max(1, model.vocab_size // tensor_parallel)
        return GEMM(
            name="lm_head",
            precision=precision,
            m=tokens,
            n=vocab_per_rank,
            k=model.hidden_size,
            weight_operand=True,
        )

    # -- mixed-batch step costs (the serving-simulator backend) ------------------------

    def _token_ops(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> Tuple[Operator, ...]:
        """Kernels whose cost depends only on the *total* token count.

        A continuous-batching engine concatenates the step's query tokens into
        one activation matrix, so the weight GEMMs (QKV / attention output /
        MLP), the layer-norms, residuals, and the KV-cache append all see
        ``tokens`` rows regardless of how those rows split across requests.
        """
        key = (model, tokens, tensor_parallel, precision)
        ops = self._token_ops_cache.get(key)
        if ops is not None:
            return ops
        builder = TransformerLayerBuilder(
            LayerExecutionSpec(
                model=model,
                micro_batch=1,
                seq_len=tokens,
                tensor_parallel=tensor_parallel,
                precision=precision,
                with_dropout=False,
                use_kv_cache=True,
            )
        )
        attention = builder.attention_gemms()
        boundary = builder.block_boundary_ops()
        kv_append = builder.attention_auxiliary_ops()[-1]  # the MemoryOp, softmax is per-request
        assembled: List[Operator] = [boundary[0], attention[0], kv_append, attention[3]]
        assembled.extend(boundary[1:4])
        assembled.extend(builder.mlp_gemms())
        assembled.extend(builder.mlp_auxiliary_ops())
        return self._cache_ops(self._token_ops_cache, key, tuple(assembled))

    def _attention_ops(
        self,
        model: TransformerConfig,
        seq_len: int,
        kv_len: int,
        tensor_parallel: int,
        precision: Precision,
    ) -> Tuple[Operator, ...]:
        """Per-request attention kernels: scores and context GEMMs plus softmax."""
        key = (model, seq_len, kv_len, tensor_parallel, precision)
        ops = self._attention_ops_cache.get(key)
        if ops is not None:
            return ops
        builder = TransformerLayerBuilder(
            LayerExecutionSpec(
                model=model,
                micro_batch=1,
                seq_len=seq_len,
                kv_len=max(1, kv_len),
                tensor_parallel=tensor_parallel,
                precision=precision,
                with_dropout=False,
                use_kv_cache=True,
            )
        )
        gemms = builder.attention_gemms()
        softmax = builder.attention_auxiliary_ops()[0]
        return self._cache_ops(self._attention_ops_cache, key, (gemms[1], gemms[2], softmax))

    @staticmethod
    def _cache_ops(cache: Dict[Tuple, Tuple[Operator, ...]], key: Tuple, ops: Tuple[Operator, ...]):
        if len(cache) >= 65536:
            cache.clear()
        cache[key] = ops
        return ops

    def _layer_comm_time(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> float:
        """Tensor-parallel collective time of one layer over ``tokens`` query tokens."""
        if tensor_parallel <= 1:
            return 0.0
        key = (model, tokens, tensor_parallel, precision)
        cached = self._comm_time_cache.get(key)
        if cached is not None:
            return cached
        builder = TransformerLayerBuilder(
            LayerExecutionSpec(
                model=model,
                micro_batch=1,
                seq_len=tokens,
                tensor_parallel=tensor_parallel,
                precision=precision,
                with_dropout=False,
                use_kv_cache=True,
            )
        )
        scope = self.tp_scope(tensor_parallel)
        time = sum(self.collective_model.time(comm) for comm in builder.forward_communication(scope=scope))
        if len(self._comm_time_cache) >= 65536:
            self._comm_time_cache.clear()
        self._comm_time_cache[key] = time
        return time

    def _price_step(
        self,
        model: TransformerConfig,
        layer_ops: Sequence[Operator],
        tensor_parallel: int,
        precision: Precision,
        num_requests: int,
        tokens: int,
        include_lm_head: bool,
    ) -> StepCost:
        """Price ``num_layers x layer_ops`` plus collectives and the lm_head."""
        gemms = [op for op in layer_ops if isinstance(op, GEMM)]
        lm_head = self._lm_head(model, num_requests, tensor_parallel, precision) if include_lm_head else None
        if lm_head is not None:
            gemms.append(lm_head)
        # One batched call warms the kernel memo for every GEMM of the step;
        # the per-op loop below then only takes cache hits.
        points = self.kernel_model.gemm_model.evaluate_many(gemms)

        num_layers = model.num_layers
        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        for op in layer_ops:
            point = self.kernel_model.evaluate(op)
            device_time += point.time + self.kernel_model.overhead(op)
            if isinstance(op, GEMM):
                if point.bound is BoundType.COMPUTE:
                    compute_bound_time += point.time
                else:
                    memory_bound_time += point.time
        device_time *= num_layers
        compute_bound_time *= num_layers
        memory_bound_time *= num_layers

        communication_time = self._layer_comm_time(model, tokens, tensor_parallel, precision) * num_layers

        if lm_head is not None:
            head_point = points[-1]
            device_time += head_point.time + self.kernel_model.overhead(lm_head)
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time
            else:
                memory_bound_time += head_point.time

        return StepCost(
            device_time=device_time,
            communication_time=communication_time,
            compute_bound_time=compute_bound_time,
            memory_bound_time=memory_bound_time,
            num_requests=num_requests,
            tokens=tokens,
        )

    def prefill_step(
        self,
        model: TransformerConfig,
        prompt_lens: Sequence[int],
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
    ) -> StepCost:
        """Cost of one prefill over a batch of prompts with the given lengths.

        The prompts are packed into one forward pass: weight GEMMs and norms
        see ``sum(prompt_lens)`` tokens, while each request keeps its own
        attention-scores/context GEMMs and softmax at its own length.  The
        lm_head prices one logits row per request (only the last prompt token
        feeds generation).
        """
        prompt_lens = [int(length) for length in prompt_lens]
        if not prompt_lens:
            return ZERO_STEP
        tokens = sum(prompt_lens)
        layer_ops: List[Operator] = list(self._token_ops(model, tokens, tensor_parallel, precision))
        for length in prompt_lens:
            layer_ops.extend(self._attention_ops(model, length, length, tensor_parallel, precision))
        return self._price_step(
            model,
            layer_ops,
            tensor_parallel,
            precision,
            num_requests=len(prompt_lens),
            tokens=tokens,
            include_lm_head=include_lm_head,
        )

    def decode_step(
        self,
        model: TransformerConfig,
        kv_lens: Sequence[int],
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
    ) -> StepCost:
        """Cost of one decode step over a mixed batch of per-request KV lengths.

        Each request contributes one query token to the shared weight GEMMs
        and one attention-scores/context pair at its own KV-cache length
        ``kv_lens[i]`` -- exactly the mixed-shape batch the vectorized
        roofline backend evaluates in one call.
        """
        kv_lens = [int(length) for length in kv_lens]
        if not kv_lens:
            return ZERO_STEP
        layer_ops: List[Operator] = list(self._token_ops(model, len(kv_lens), tensor_parallel, precision))
        for kv_len in kv_lens:
            layer_ops.extend(self._attention_ops(model, 1, kv_len, tensor_parallel, precision))
        return self._price_step(
            model,
            layer_ops,
            tensor_parallel,
            precision,
            num_requests=len(kv_lens),
            tokens=len(kv_lens),
            include_lm_head=include_lm_head,
        )
