"""Step-cost API: price one prefill or one decode step of an inference engine.

This module is the reusable pricing core that both the end-to-end
:class:`~repro.core.inference.InferencePerformanceModel` and the serving
simulator (:mod:`repro.serving`) are built on.  It answers two questions
directly:

* **What does one prefill over this set of prompt lengths cost?**
  (:meth:`StepCostModel.prefill_step`) -- a continuous-batching engine packs
  the admitted prompts into one forward pass: the weight GEMMs see the
  *total* token count, while attention stays per-sequence.
* **What does one decode step over this mixed batch of per-request KV
  lengths cost?** (:meth:`StepCostModel.decode_step`) -- one token per
  request through the weight GEMMs, plus one attention-scores/context GEMM
  pair per request at its own KV-cache length.
* **What do ``k`` consecutive decode steps of a fixed batch cost?**
  (:meth:`StepCostModel.decode_run`) -- between two composition changes of a
  continuous-batching engine the decode batch is identical except for every
  KV length advancing by one per step.  The whole steps x batch KV-length
  matrix is priced in one vectorized pass: weight GEMMs, collectives, and
  the lm_head are constant across the epoch and priced once, while the
  KV-dependent attention kernels are looked up from a per-KV-length time
  table filled through the batched roofline backend.  The returned per-step
  costs are bit-identical to ``k`` sequential :meth:`decode_step` calls.

Both single-step questions are evaluated in **one** call through the
vectorized roofline backend (:meth:`GemmTimeModel.evaluate_many
<repro.perf.gemm.GemmTimeModel.evaluate_many>` /
:mod:`repro.perf.batched`), and :meth:`~StepCostModel.decode_run` amortizes
even the per-step Python work across a whole epoch -- which is what makes a
discrete-event serving simulation over thousands of steps tractable.

The module also hosts the phase-report builders
(:meth:`StepCostModel.phase_report`, :meth:`StepCostModel.decode_report_exact`)
that :meth:`InferencePerformanceModel.predict
<repro.core.inference.InferencePerformanceModel.predict>` is reimplemented on
top of; their numbers are bit-identical to the pre-refactor scalar path
(pinned by ``tests/core/test_inference_golden.py``).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..caching import Memo
from ..comm.collectives import CollectiveAlgorithm
from ..comm.fabric import CollectiveModel, shared_collective_model
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from ..perf.kernels import DeviceKernelModel
from ..perf.roofline import BoundType
from ..workload.inference import InferencePhaseSpec
from ..workload.operators import GEMM, Operator
from ..workload.transformer_layer import LayerExecutionSpec, TransformerLayerBuilder
from .reports import KernelTimeEntry, PhaseReport


@dataclasses.dataclass(frozen=True)
class StepCost:
    """Cost of one engine step (a prefill or a decode iteration).

    Attributes:
        device_time: On-device kernel time of the step, in seconds.
        communication_time: Tensor-parallel collective time of the step.
        compute_bound_time: GEMM time spent in compute-bound kernels.
        memory_bound_time: GEMM time spent in memory/cache-bound kernels.
        num_requests: Requests processed by the step.
        tokens: Query tokens processed by the step (total prompt tokens for a
            prefill, one per request for a decode step).
    """

    device_time: float
    communication_time: float
    compute_bound_time: float
    memory_bound_time: float
    num_requests: int = 0
    tokens: int = 0

    @property
    def total_time(self) -> float:
        """Wall-clock time of the step: device kernels plus communication."""
        return self.device_time + self.communication_time

    @property
    def is_idle(self) -> bool:
        """Whether the step priced no work at all."""
        return self.num_requests == 0


ZERO_STEP = StepCost(0.0, 0.0, 0.0, 0.0)


@dataclasses.dataclass(frozen=True)
class DecodeRun:
    """Cost of ``num_steps`` consecutive decode steps over a fixed batch.

    Produced by :meth:`StepCostModel.decode_run`.  All arrays are
    ``float64`` of shape ``(num_steps,)``; entry ``s`` is bit-identical to
    the corresponding field of the :class:`StepCost` a scalar
    :meth:`StepCostModel.decode_step` call at the step's KV lengths returns.

    Attributes:
        device_times: On-device kernel time per step.
        communication_time: Tensor-parallel collective time of each step
            (constant across the epoch -- it depends only on the batch size).
        compute_bound_times: GEMM time in compute-bound kernels per step.
        memory_bound_times: GEMM time in memory/cache-bound kernels per step.
        total_times: Wall-clock time per step (device + communication).
        num_requests: Requests decoded together in every step.
    """

    device_times: np.ndarray
    communication_time: float
    compute_bound_times: np.ndarray
    memory_bound_times: np.ndarray
    total_times: np.ndarray
    num_requests: int

    @property
    def num_steps(self) -> int:
        """Number of decode steps the run prices."""
        return int(self.device_times.shape[0])

    def step_costs(self) -> List[StepCost]:
        """Materialize the per-step :class:`StepCost` objects."""
        return [
            StepCost(
                device_time=float(self.device_times[step]),
                communication_time=self.communication_time,
                compute_bound_time=float(self.compute_bound_times[step]),
                memory_bound_time=float(self.memory_bound_times[step]),
                num_requests=self.num_requests,
                tokens=self.num_requests,
            )
            for step in range(self.num_steps)
        ]


_EMPTY_TIMES = np.zeros(0, dtype=np.float64)


class _AttentionTimeTable:
    """Grow-on-demand per-KV-length times of the decode attention kernels.

    One contiguous ``(7, size)`` array so an epoch needs a single fancy-
    indexed gather.  Kernel order within a request mirrors the order
    :meth:`StepCostModel._attention_ops` emits: scores GEMM, context GEMM,
    softmax.  Rows:

    * 0-2: ``point.time + launch overhead`` of scores / context / softmax
      (the terms the device-time accumulation adds);
    * 3-4: bare ``point.time`` of the scores / context GEMM when compute
      bound, else 0.0;
    * 5-6: the same split for memory/cache-bound time.

    The zero in the other bin keeps summing both bins over any KV set exact
    (adding 0.0 to a non-negative float is the identity).
    """

    #: Row indices of the table.
    DEV_SCORES, DEV_CONTEXT, DEV_SOFTMAX, COMP_SCORES, COMP_CONTEXT, MEM_SCORES, MEM_CONTEXT = range(7)

    __slots__ = ("filled", "terms")

    def __init__(self) -> None:
        self.filled = np.zeros(0, dtype=bool)
        self.terms = np.zeros((7, 0), dtype=np.float64)

    def reserve(self, size: int) -> None:
        """Grow the table so KV lengths below ``size`` are addressable."""
        current = self.filled.shape[0]
        if size <= current:
            return
        size = max(size, 2 * current, 256)
        filled = np.zeros(size, dtype=bool)
        filled[:current] = self.filled
        self.filled = filled
        terms = np.zeros((7, size), dtype=np.float64)
        terms[:, :current] = self.terms
        self.terms = terms


@dataclasses.dataclass
class StepCostModel:
    """Prices individual inference-engine steps on one system.

    Attributes:
        system: The hardware system; steps use ``tensor_parallel`` of its
            devices.
        kernel_model: Device kernel timing model (defaults to the system's
            accelerator with standard GEMV utilization).
        collective_model: Communication model; defaults to the double-binary-
            tree algorithm, the latency-optimal choice for the small messages
            of the decode phase.
    """

    system: SystemSpec
    kernel_model: Optional[DeviceKernelModel] = None
    collective_model: Optional[CollectiveModel] = None

    def __post_init__(self) -> None:
        if self.kernel_model is None:
            self.kernel_model = DeviceKernelModel(accelerator=self.system.accelerator)
        if self.collective_model is None:
            self.collective_model = shared_collective_model(
                self.system, CollectiveAlgorithm.DOUBLE_BINARY_TREE
            )
        # Per-shape operator lists and per-layer collective times recur across
        # thousands of simulation steps; memoizing them keeps the
        # discrete-event loop allocation-light.
        self._attention_ops_cache = Memo()
        self._token_ops_cache = Memo()
        self._comm_time_cache = Memo()
        # Epoch-fused decode pricing state: per-KV-length attention time
        # tables and the batch-constant partial sums of the token ops.  Both
        # survive across simulations (and across the scenarios of a sweep
        # when the model instance is shared through the engine).
        self._attention_tables: Dict[Tuple, _AttentionTimeTable] = {}
        self._token_partials_cache = Memo()
        self._head_terms_cache = Memo()
        # Serializes table growth + fills: one StepCostModel is shared per
        # system (engine_for), so thread-executor sweeps price epochs
        # concurrently.  The read path stays lock-free -- growth copies the
        # old content and a gather reads one array reference atomically.
        self._table_lock = threading.Lock()
        # Memo telemetry: every lookup into the caches above counts as a hit
        # or a miss, so sweeps can verify that a shared instance actually
        # reuses its pricing work across scenario evaluations.
        self.cache_hits = 0
        self.cache_misses = 0

    def tp_scope(self, tensor_parallel: int) -> str:
        """Collective scope of a TP group of the given size on this system."""
        return "intra_node" if tensor_parallel <= self.system.devices_per_node else "inter_node"

    # -- phase reports (the InferencePerformanceModel backend) -------------------------

    def phase_report(
        self,
        name: str,
        builder: Optional[TransformerLayerBuilder],
        num_layers: int,
        lm_head: Optional[GEMM],
        repeats: int,
        tp_scope: str,
        ops: Optional[Sequence[Operator]] = None,
        comms: Optional[Sequence[Operator]] = None,
    ) -> PhaseReport:
        """Price one phase: ``repeats`` executions of ``num_layers`` layers.

        ``ops``/``comms`` accept the layer's precomputed operator lists (what
        ``builder.forward_compute_ops()`` / ``forward_communication(tp_scope)``
        return) so a planning pass can build the workload graph once and price
        it later; when given, ``builder`` may be ``None``.  The accumulation
        below is identical either way.
        """
        if ops is None:
            ops = builder.forward_compute_ops()
        if comms is None:
            comms = builder.forward_communication(scope=tp_scope)
        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        entries: List[KernelTimeEntry] = []
        for op in ops:
            point = self.kernel_model.evaluate(op)
            time = point.time + self.kernel_model.overhead(op)
            device_time += time * num_layers
            if isinstance(op, GEMM):
                if point.bound is BoundType.COMPUTE:
                    compute_bound_time += point.time * num_layers
                else:
                    memory_bound_time += point.time * num_layers
            entries.append(
                KernelTimeEntry(
                    name=op.name,
                    time=time,
                    count=num_layers * repeats,
                    bound=point.bound,
                    flops=op.flops,
                    bytes_moved=point.level_bytes.get("DRAM", op.bytes_total),
                )
            )
        communication_time = 0.0
        for comm in comms:
            communication_time += self.collective_model.time(comm) * num_layers
        if lm_head is not None:
            head_point, head_time, entry = self.lm_head_entry(lm_head, count=repeats)
            device_time += head_time
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time
            else:
                memory_bound_time += head_point.time
            entries.append(entry)
        return PhaseReport(
            name=name,
            device_time=device_time * repeats,
            communication_time=communication_time * repeats,
            compute_bound_time=compute_bound_time * repeats,
            memory_bound_time=memory_bound_time * repeats,
            kernel_breakdown=entries,
        )

    def lm_head_entry(self, lm_head: GEMM, count: int):
        """Price the logits GEMM once and shape its breakdown entry.

        Shared by the average and exact decode paths (the lm_head cost does
        not depend on the KV length); callers scale the returned times by
        their own repeat count.
        """
        head_point = self.kernel_model.evaluate(lm_head)
        head_time = head_point.time + self.kernel_model.overhead(lm_head)
        entry = KernelTimeEntry(
            name=lm_head.name,
            time=head_time,
            count=count,
            bound=head_point.bound,
            flops=lm_head.flops,
            bytes_moved=head_point.level_bytes.get("DRAM", lm_head.bytes_total),
        )
        return head_point, head_time, entry

    def decode_exact_prepared(
        self, spec: InferencePhaseSpec
    ) -> Tuple[List[TransformerLayerBuilder], List[List[Operator]]]:
        """Per-step builders and operator lists of the exact decode phase.

        One builder (and its ``forward_compute_ops()`` list) per generated
        token, at that token's true KV length -- exactly what
        :meth:`decode_report_exact` constructs internally.  A planning pass
        builds these once, collects the GEMMs for a cross-scenario batch, and
        passes the pair back via ``prepared`` so the graph is not rebuilt at
        pricing time.
        """
        steps = max(0, spec.generated_tokens)
        builders = [
            TransformerLayerBuilder(spec.decode_layer_spec(spec.prompt_len + step))
            for step in range(steps)
        ]
        return builders, [builder.forward_compute_ops() for builder in builders]

    def decode_report_exact(
        self,
        spec: InferencePhaseSpec,
        num_layers: int,
        lm_head: Optional[GEMM],
        tp_scope: str,
        prepared: Optional[Tuple[List[TransformerLayerBuilder], List[List[Operator]]]] = None,
    ) -> PhaseReport:
        """Price the decode phase with every token at its true KV length.

        The KV-cache grows from ``prompt_len`` to ``prompt_len + T - 1`` over
        the ``T`` generated tokens, so the per-token operator lists differ
        only in the KV-dependent kernels (attention scores/context, softmax).
        All GEMMs of all steps are evaluated in **one** call through the
        vectorized roofline backend; the kernel breakdown reports the mean
        per-invocation time (so ``entry.time * entry.count`` stays the exact
        phase total) and the bound type of the median-KV step.
        """
        steps = max(0, spec.generated_tokens)
        if steps == 0:
            return PhaseReport(
                name="decode",
                device_time=0.0,
                communication_time=0.0,
                compute_bound_time=0.0,
                memory_bound_time=0.0,
                kernel_breakdown=[],
            )
        builders, step_ops = prepared if prepared is not None else self.decode_exact_prepared(spec)
        # One batched evaluation warms the kernel memo for every GEMM of every
        # step; the per-slot loop below then only takes cache hits.
        self.kernel_model.gemm_model.evaluate_many(
            [op for ops in step_ops for op in ops if isinstance(op, GEMM)]
        )

        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        entries: List[KernelTimeEntry] = []
        median_step = steps // 2
        for slot in zip(*step_ops):
            overhead = self.kernel_model.overhead(slot[0])
            points = [self.kernel_model.evaluate(op) for op in slot]
            slot_kernel_time = sum(point.time for point in points)
            slot_time = slot_kernel_time + overhead * steps
            device_time += slot_time * num_layers
            if isinstance(slot[0], GEMM):
                slot_compute = sum(point.time for point in points if point.bound is BoundType.COMPUTE)
                compute_bound_time += slot_compute * num_layers
                memory_bound_time += (slot_kernel_time - slot_compute) * num_layers
            entries.append(
                KernelTimeEntry(
                    name=slot[0].name,
                    time=slot_time / steps,
                    count=num_layers * steps,
                    bound=points[median_step].bound,
                    flops=sum(op.flops for op in slot) / steps,
                    bytes_moved=sum(
                        point.level_bytes.get("DRAM", op.bytes_total) for op, point in zip(slot, points)
                    )
                    / steps,
                )
            )
        communication_time = 0.0
        for comm in builders[0].forward_communication(scope=tp_scope):
            communication_time += self.collective_model.time(comm) * num_layers
        communication_time *= steps
        if lm_head is not None:
            head_point, head_time, entry = self.lm_head_entry(lm_head, count=steps)
            device_time += head_time * steps
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time * steps
            else:
                memory_bound_time += head_point.time * steps
            entries.append(entry)
        return PhaseReport(
            name="decode",
            device_time=device_time,
            communication_time=communication_time,
            compute_bound_time=compute_bound_time,
            memory_bound_time=memory_bound_time,
            kernel_breakdown=entries,
        )

    def lm_head_gemm(self, spec: InferencePhaseSpec) -> Optional[GEMM]:
        """The logits GEMM of one phase (one query token per request)."""
        if not spec.include_lm_head:
            return None
        return self._lm_head(spec.model, spec.batch_size, spec.tensor_parallel, spec.precision)

    def _lm_head(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> GEMM:
        vocab_per_rank = max(1, model.vocab_size // tensor_parallel)
        return GEMM(
            name="lm_head",
            precision=precision,
            m=tokens,
            n=vocab_per_rank,
            k=model.hidden_size,
            weight_operand=True,
        )

    # -- mixed-batch step costs (the serving-simulator backend) ------------------------

    def _token_ops(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> Tuple[Operator, ...]:
        """Kernels whose cost depends only on the *total* token count.

        A continuous-batching engine concatenates the step's query tokens into
        one activation matrix, so the weight GEMMs (QKV / attention output /
        MLP), the layer-norms, residuals, and the KV-cache append all see
        ``tokens`` rows regardless of how those rows split across requests.
        """
        key = (model, tokens, tensor_parallel, precision)
        ops = self._token_ops_cache.get(key)
        if ops is not None:
            self.cache_hits += 1
            return ops
        self.cache_misses += 1
        builder = TransformerLayerBuilder(
            LayerExecutionSpec(
                model=model,
                micro_batch=1,
                seq_len=tokens,
                tensor_parallel=tensor_parallel,
                precision=precision,
                with_dropout=False,
                use_kv_cache=True,
            )
        )
        attention = builder.attention_gemms()
        boundary = builder.block_boundary_ops()
        kv_append = builder.attention_auxiliary_ops()[-1]  # the MemoryOp, softmax is per-request
        assembled: List[Operator] = [boundary[0], attention[0], kv_append, attention[3]]
        assembled.extend(boundary[1:4])
        assembled.extend(builder.mlp_gemms())
        assembled.extend(builder.mlp_auxiliary_ops())
        return self._token_ops_cache.put(key, tuple(assembled))

    def _attention_ops(
        self,
        model: TransformerConfig,
        seq_len: int,
        kv_len: int,
        tensor_parallel: int,
        precision: Precision,
    ) -> Tuple[Operator, ...]:
        """Per-request attention kernels: scores and context GEMMs plus softmax."""
        key = (model, seq_len, kv_len, tensor_parallel, precision)
        ops = self._attention_ops_cache.get(key)
        if ops is not None:
            self.cache_hits += 1
            return ops
        self.cache_misses += 1
        builder = TransformerLayerBuilder(
            LayerExecutionSpec(
                model=model,
                micro_batch=1,
                seq_len=seq_len,
                kv_len=max(1, kv_len),
                tensor_parallel=tensor_parallel,
                precision=precision,
                with_dropout=False,
                use_kv_cache=True,
            )
        )
        gemms = builder.attention_gemms()
        softmax = builder.attention_auxiliary_ops()[0]
        return self._attention_ops_cache.put(key, (gemms[1], gemms[2], softmax))

    def _layer_comm_time(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> float:
        """Tensor-parallel collective time of one layer over ``tokens`` query tokens."""
        if tensor_parallel <= 1:
            return 0.0
        key = (model, tokens, tensor_parallel, precision)
        cached = self._comm_time_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        builder = TransformerLayerBuilder(
            LayerExecutionSpec(
                model=model,
                micro_batch=1,
                seq_len=tokens,
                tensor_parallel=tensor_parallel,
                precision=precision,
                with_dropout=False,
                use_kv_cache=True,
            )
        )
        scope = self.tp_scope(tensor_parallel)
        time = sum(self.collective_model.time(comm) for comm in builder.forward_communication(scope=scope))
        return self._comm_time_cache.put(key, time)

    def _price_step(
        self,
        model: TransformerConfig,
        layer_ops: Sequence[Operator],
        tensor_parallel: int,
        precision: Precision,
        num_requests: int,
        tokens: int,
        include_lm_head: bool,
    ) -> StepCost:
        """Price ``num_layers x layer_ops`` plus collectives and the lm_head."""
        gemms = [op for op in layer_ops if isinstance(op, GEMM)]
        lm_head = self._lm_head(model, num_requests, tensor_parallel, precision) if include_lm_head else None
        if lm_head is not None:
            gemms.append(lm_head)
        # One batched call warms the kernel memo for every GEMM of the step;
        # the per-op loop below then only takes cache hits.
        points = self.kernel_model.gemm_model.evaluate_many(gemms)

        num_layers = model.num_layers
        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        evaluate = self.kernel_model.evaluate
        overhead = self.kernel_model.overhead
        for op in layer_ops:
            point = evaluate(op)
            point_time = point.time
            device_time += point_time + overhead(op)
            if isinstance(op, GEMM):
                if point.bound is BoundType.COMPUTE:
                    compute_bound_time += point_time
                else:
                    memory_bound_time += point_time
        device_time *= num_layers
        compute_bound_time *= num_layers
        memory_bound_time *= num_layers

        communication_time = self._layer_comm_time(model, tokens, tensor_parallel, precision) * num_layers

        if lm_head is not None:
            head_point = points[-1]
            head_time = head_point.time
            device_time += head_time + self.kernel_model.overhead(lm_head)
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_time
            else:
                memory_bound_time += head_time

        return StepCost(
            device_time=device_time,
            communication_time=communication_time,
            compute_bound_time=compute_bound_time,
            memory_bound_time=memory_bound_time,
            num_requests=num_requests,
            tokens=tokens,
        )

    def prefill_step(
        self,
        model: TransformerConfig,
        prompt_lens: Sequence[int],
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
    ) -> StepCost:
        """Cost of one prefill over a batch of prompts with the given lengths.

        The prompts are packed into one forward pass: weight GEMMs and norms
        see ``sum(prompt_lens)`` tokens, while each request keeps its own
        attention-scores/context GEMMs and softmax at its own length.  The
        lm_head prices one logits row per request (only the last prompt token
        feeds generation).
        """
        prompt_lens = [int(length) for length in prompt_lens]
        if not prompt_lens:
            return ZERO_STEP
        tokens = sum(prompt_lens)
        layer_ops: List[Operator] = list(self._token_ops(model, tokens, tensor_parallel, precision))
        for length in prompt_lens:
            layer_ops.extend(self._attention_ops(model, length, length, tensor_parallel, precision))
        return self._price_step(
            model,
            layer_ops,
            tensor_parallel,
            precision,
            num_requests=len(prompt_lens),
            tokens=tokens,
            include_lm_head=include_lm_head,
        )

    def decode_step(
        self,
        model: TransformerConfig,
        kv_lens: Sequence[int],
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
    ) -> StepCost:
        """Cost of one decode step over a mixed batch of per-request KV lengths.

        Each request contributes one query token to the shared weight GEMMs
        and one attention-scores/context pair at its own KV-cache length
        ``kv_lens[i]`` -- exactly the mixed-shape batch the vectorized
        roofline backend evaluates in one call.
        """
        kv_lens = [int(length) for length in kv_lens]
        if not kv_lens:
            return ZERO_STEP
        layer_ops: List[Operator] = list(self._token_ops(model, len(kv_lens), tensor_parallel, precision))
        for kv_len in kv_lens:
            layer_ops.extend(self._attention_ops(model, 1, kv_len, tensor_parallel, precision))
        return self._price_step(
            model,
            layer_ops,
            tensor_parallel,
            precision,
            num_requests=len(kv_lens),
            tokens=len(kv_lens),
            include_lm_head=include_lm_head,
        )

    # -- epoch-fused decode pricing (the event-horizon serving backend) ----------------

    def _attention_table(
        self, model: TransformerConfig, tensor_parallel: int, precision: Precision
    ) -> _AttentionTimeTable:
        """The per-KV-length attention time table of one batch configuration."""
        key = (model, tensor_parallel, precision)
        table = self._attention_tables.get(key)
        if table is None:
            if len(self._attention_tables) >= 64:
                # Evict the oldest configuration only: clearing everything
                # would throw away the warm tables of the other 63.
                self._attention_tables.pop(next(iter(self._attention_tables)))
            table = _AttentionTimeTable()
            self._attention_tables[key] = table
        return table

    def _demand_attention_rows(
        self,
        table: _AttentionTimeTable,
        model: TransformerConfig,
        kv_lens: Sequence[int],
        num_steps: int,
        tensor_parallel: int,
        precision: Precision,
    ) -> None:
        """Make sure the table covers ``[kv, kv + num_steps)`` for every batch entry.

        The epoch's KV demand is a union of equal-length integer ranges, so
        coverage is computed by merging the (at most batch-size) sorted
        ranges instead of deduplicating the full steps x batch matrix; on the
        common warm path every span is already filled and this is just one
        ``all()`` per span.  Growth and fills hold the table lock because the
        owning model is shared across thread-executor sweeps.
        """
        unique_kvs = sorted(set(kv_lens))
        with self._table_lock:
            table.reserve(unique_kvs[-1] + num_steps)
            spans: List[List[int]] = []
            for kv in unique_kvs:
                stop = kv + num_steps
                if spans and kv <= spans[-1][1]:
                    if stop > spans[-1][1]:
                        spans[-1][1] = stop
                else:
                    spans.append([kv, stop])
            filled = table.filled
            demanded = 0
            chunks: List[np.ndarray] = []
            for start, stop in spans:
                demanded += stop - start
                segment = filled[start:stop]
                if not segment.all():
                    chunks.append(start + np.nonzero(~segment)[0])
            if not chunks:
                self.cache_hits += demanded
                return
            missing = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            self.cache_hits += demanded - int(missing.size)
            self.cache_misses += int(missing.size)
            self._fill_attention_table(table, model, missing, tensor_parallel, precision)

    def _fill_attention_table(
        self,
        table: _AttentionTimeTable,
        model: TransformerConfig,
        missing: np.ndarray,
        tensor_parallel: int,
        precision: Precision,
    ) -> None:
        """Price the attention kernels of every KV length in ``missing`` at once.

        The scores/context GEMMs of all lengths go through the batched
        roofline backend in one call and the softmax times are reduced with
        the memory-bound kernel model's exact arithmetic, so the stored terms
        match what the scalar per-step accumulation of :meth:`_price_step`
        adds for each kernel bit for bit (the backend's exact-equality
        contract, enforced by ``tests/perf/test_batched.py``).
        """
        from ..perf.batched import BOUND_COMPUTE, GemmBatch

        ops_by_kv = [
            self._attention_ops(model, 1, int(kv), tensor_parallel, precision) for kv in missing
        ]
        gemm_model = self.kernel_model.gemm_model
        result = gemm_model.batched.evaluate_batch(
            GemmBatch.from_gemms(op for scores, context, _ in ops_by_kv for op in (scores, context))
        )
        times = result.kernel_time
        compute_bound = result.bound_codes == BOUND_COMPUTE
        device_terms = times + gemm_model.kernel_overhead
        terms = table.terms
        for offset, (dev_row, comp_row, mem_row) in enumerate(
            (
                (table.DEV_SCORES, table.COMP_SCORES, table.MEM_SCORES),
                (table.DEV_CONTEXT, table.COMP_CONTEXT, table.MEM_CONTEXT),
            )
        ):
            terms[dev_row, missing] = device_terms[offset::2]
            terms[comp_row, missing] = np.where(compute_bound[offset::2], times[offset::2], 0.0)
            terms[mem_row, missing] = np.where(compute_bound[offset::2], 0.0, times[offset::2])

        # Softmax: the memory-bound kernel model's max(compute, DRAM stream)
        # with the same operand order as MemoryBoundKernelModel.evaluate.
        memory_model = self.kernel_model.memory_model
        dram = memory_model.accelerator.memory.dram
        bandwidth = dram.bandwidth * memory_model.dram_utilization
        softmax_bytes = np.array([ops[2].bytes_total for ops in ops_by_kv], dtype=np.float64)
        softmax_flops = np.array([ops[2].flops for ops in ops_by_kv], dtype=np.float64)
        softmax_times = np.maximum(
            softmax_flops / memory_model.accelerator.compute.vector_throughput,
            softmax_bytes / bandwidth,
        )
        terms[table.DEV_SOFTMAX, missing] = softmax_times + memory_model.kernel_overhead
        table.filled[missing] = True

    def _token_partials(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> Tuple[float, float, float]:
        """Partial sums of the batch-constant (token-count) kernels of one step.

        Returns ``(device, compute_bound, memory_bound)`` exactly as the
        scalar :meth:`_price_step` accumulation holds them after the token
        ops and before the first per-request attention kernel, so a fused
        run can seed its sequential per-step reductions with them.
        """
        key = (model, tokens, tensor_parallel, precision)
        partials = self._token_partials_cache.get(key)
        if partials is not None:
            self.cache_hits += 1
            return partials
        self.cache_misses += 1
        ops = self._token_ops(model, tokens, tensor_parallel, precision)
        self.kernel_model.gemm_model.evaluate_many([op for op in ops if isinstance(op, GEMM)])
        device = 0.0
        compute = 0.0
        memory = 0.0
        for op in ops:
            point = self.kernel_model.evaluate(op)
            device += point.time + self.kernel_model.overhead(op)
            if isinstance(op, GEMM):
                if point.bound is BoundType.COMPUTE:
                    compute += point.time
                else:
                    memory += point.time
        self._token_partials_cache.put(key, (device, compute, memory))
        return device, compute, memory

    def _head_terms(
        self, model: TransformerConfig, tokens: int, tensor_parallel: int, precision: Precision
    ) -> Tuple[float, float, bool]:
        """The lm_head's per-step contributions for ``tokens`` logits rows.

        Returns ``(device term, bare kernel time, is compute bound)``; the
        device term is the ``point.time + overhead`` expression the scalar
        accumulation adds, computed once per batch composition.
        """
        key = (model, tokens, tensor_parallel, precision)
        terms = self._head_terms_cache.get(key)
        if terms is not None:
            self.cache_hits += 1
            return terms
        self.cache_misses += 1
        lm_head = self._lm_head(model, tokens, tensor_parallel, precision)
        point = self.kernel_model.evaluate(lm_head)
        head_time = point.time
        terms = (
            head_time + self.kernel_model.overhead(lm_head),
            head_time,
            point.bound is BoundType.COMPUTE,
        )
        return self._head_terms_cache.put(key, terms)

    def decode_run(
        self,
        model: TransformerConfig,
        kv_lens: Sequence[int],
        num_steps: int,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
    ) -> DecodeRun:
        """Price ``num_steps`` consecutive decode steps of a fixed batch at once.

        Step ``s`` (0-based) prices the batch at KV lengths
        ``[kv + s for kv in kv_lens]`` -- exactly what ``num_steps``
        sequential :meth:`decode_step` calls see over a continuous-batching
        epoch with no admissions or retirements.  The weight GEMMs, the
        collectives, and the lm_head depend only on the (constant) batch
        composition and are priced once; the per-request attention kernels
        come from the per-KV-length table.  Every per-step reduction runs as
        a sequential ``cumsum`` seeded with the scalar path's partial sums,
        in the scalar path's accumulation order, so the returned per-step
        costs are **bit-identical** to the step-by-step loop.
        """
        kv_lens = [int(length) for length in kv_lens]
        num_steps = int(num_steps)
        if not kv_lens or num_steps < 1:
            return DecodeRun(
                device_times=_EMPTY_TIMES,
                communication_time=0.0,
                compute_bound_times=_EMPTY_TIMES,
                memory_bound_times=_EMPTY_TIMES,
                total_times=_EMPTY_TIMES,
                num_requests=len(kv_lens),
            )
        batch = len(kv_lens)
        num_layers = model.num_layers
        table = self._attention_table(model, tensor_parallel, precision)
        self._demand_attention_rows(table, model, kv_lens, num_steps, tensor_parallel, precision)
        token_device, token_compute, token_memory = self._token_partials(
            model, batch, tensor_parallel, precision
        )

        # One gather of every attention term the epoch touches:
        # gathered[row, s, i] is table row `row` at request i's KV length in
        # step s.
        kv_matrix = (
            np.asarray(kv_lens, dtype=np.int64)[None, :]
            + np.arange(num_steps, dtype=np.int64)[:, None]
        )
        gathered = table.terms[:, kv_matrix]

        # Sequential (cumsum) reductions over [token partial, per-request
        # attention terms...] per step: columns 3i+1..3i+3 of a row hold
        # request i's scores/context/softmax terms, matching the order the
        # scalar loop walks layer_ops in.
        device_terms = np.empty((num_steps, 3 * batch + 1), dtype=np.float64)
        device_terms[:, 0] = token_device
        device_terms[:, 1::3] = gathered[table.DEV_SCORES]
        device_terms[:, 2::3] = gathered[table.DEV_CONTEXT]
        device_terms[:, 3::3] = gathered[table.DEV_SOFTMAX]
        device_times = device_terms.cumsum(axis=1)[:, -1] * num_layers

        # Compute- and memory-bound splits share one stacked reduction: the
        # top `num_steps` rows accumulate the compute bin, the bottom rows
        # the memory bin (only the two GEMMs contribute; zeros elsewhere).
        bound_terms = np.empty((2 * num_steps, 2 * batch + 1), dtype=np.float64)
        bound_terms[:num_steps, 0] = token_compute
        bound_terms[:num_steps, 1::2] = gathered[table.COMP_SCORES]
        bound_terms[:num_steps, 2::2] = gathered[table.COMP_CONTEXT]
        bound_terms[num_steps:, 0] = token_memory
        bound_terms[num_steps:, 1::2] = gathered[table.MEM_SCORES]
        bound_terms[num_steps:, 2::2] = gathered[table.MEM_CONTEXT]
        bound_times = bound_terms.cumsum(axis=1)[:, -1] * num_layers
        compute_times = bound_times[:num_steps]
        memory_times = bound_times[num_steps:]

        communication_time = (
            self._layer_comm_time(model, batch, tensor_parallel, precision) * num_layers
        )
        if include_lm_head:
            head_device, head_time, head_is_compute = self._head_terms(
                model, batch, tensor_parallel, precision
            )
            device_times = device_times + head_device
            if head_is_compute:
                compute_times = compute_times + head_time
            else:
                memory_times = memory_times + head_time
        return DecodeRun(
            device_times=device_times,
            communication_time=communication_time,
            compute_bound_times=compute_times,
            memory_bound_times=memory_times,
            total_times=device_times + communication_time,
            num_requests=batch,
        )
