"""Compute- versus memory-boundedness analysis at the matrix-multiply level.

These helpers produce the paper's per-GEMM bottleneck views:

* :func:`prefill_gemm_table` regenerates Table 4 -- the time and bound type of
  every matrix-multiply function of one transformer layer during the
  summarization (prefill) phase of inference,
* :func:`gemm_time_by_bound` regenerates the stacked compute-/memory-bound
  bars of Fig. 8 (inference) and Fig. 7 (training, via the training model),
* :func:`attention_layer_bound_breakdown` feeds the technology-node sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hardware.accelerator import AcceleratorSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from ..perf.gemm import GemmTimeModel
from ..perf.kernels import DeviceKernelModel
from ..perf.roofline import BoundType, RooflinePoint
from ..workload.operators import GEMM
from ..workload.transformer_layer import LayerExecutionSpec, TransformerLayerBuilder
from .reports import GemmBottleneckEntry


def layer_gemms(
    model: TransformerConfig,
    batch_size: int,
    seq_len: int,
    kv_len: int,
    tensor_parallel: int,
    precision: Precision,
    use_kv_cache: bool,
) -> List[GEMM]:
    """The forward GEMMs of one inference layer at the given shapes.

    This is the workload description behind :func:`prefill_gemm_table` and
    :func:`decode_gemm_table`; the cross-scenario batch planner
    (:mod:`repro.sweep.batchplan`) reuses it to collect the same queries
    without pricing them.
    """
    spec = LayerExecutionSpec(
        model=model,
        micro_batch=batch_size,
        seq_len=seq_len,
        kv_len=kv_len,
        tensor_parallel=tensor_parallel,
        sequence_parallel=False,
        precision=precision,
        with_dropout=False,
        use_kv_cache=use_kv_cache,
    )
    return TransformerLayerBuilder(spec).forward_gemms()


def entries_from_points(gemms: List[GEMM], points: List[RooflinePoint]) -> List[GemmBottleneckEntry]:
    """Shape evaluated roofline points into the table's bottleneck rows.

    The single row-assembly point of the bottleneck tables: both the scalar
    path (:func:`prefill_gemm_table` / :func:`decode_gemm_table`) and the
    cross-scenario batch planner (:mod:`repro.sweep.batchplan`) build their
    entries here, so the two paths cannot drift apart.
    """
    return [
        GemmBottleneckEntry(
            name=gemm.name,
            time=point.time,
            bound=point.bound,
            m=gemm.m,
            n=gemm.n,
            k=gemm.k,
            batch=gemm.batch,
            arithmetic_intensity=point.arithmetic_intensity,
        )
        for gemm, point in zip(gemms, points)
    ]


def _bottleneck_entries(gemm_model: GemmTimeModel, gemms: List[GEMM]) -> List[GemmBottleneckEntry]:
    """Evaluate the table's GEMMs in one batched call and shape the rows."""
    return entries_from_points(gemms, gemm_model.evaluate_many(gemms))


def prefill_gemm_table(
    model: TransformerConfig,
    accelerator: AcceleratorSpec,
    batch_size: int = 1,
    prompt_tokens: int = 200,
    tensor_parallel: int = 1,
    precision: Precision = Precision.FP16,
    gemm_model: Optional[GemmTimeModel] = None,
) -> List[GemmBottleneckEntry]:
    """Per-GEMM time and bound type for one layer of the prefill phase (Table 4)."""
    gemm_model = gemm_model or GemmTimeModel(accelerator=accelerator)
    gemms = layer_gemms(
        model,
        batch_size=batch_size,
        seq_len=prompt_tokens,
        kv_len=prompt_tokens,
        tensor_parallel=tensor_parallel,
        precision=precision,
        use_kv_cache=False,
    )
    return _bottleneck_entries(gemm_model, gemms)


def decode_gemm_table(
    model: TransformerConfig,
    accelerator: AcceleratorSpec,
    batch_size: int = 1,
    kv_len: int = 200,
    tensor_parallel: int = 1,
    precision: Precision = Precision.FP16,
    gemm_model: Optional[GemmTimeModel] = None,
) -> List[GemmBottleneckEntry]:
    """Per-GEMM time and bound type for one decode step attending to ``kv_len`` tokens."""
    gemm_model = gemm_model or GemmTimeModel(accelerator=accelerator)
    gemms = layer_gemms(
        model,
        batch_size=batch_size,
        seq_len=1,
        kv_len=kv_len,
        tensor_parallel=tensor_parallel,
        precision=precision,
        use_kv_cache=True,
    )
    return _bottleneck_entries(gemm_model, gemms)


def gemm_time_by_bound(entries: List[GemmBottleneckEntry]) -> Dict[str, float]:
    """Sum the GEMM time of a table by bound type (``compute`` / ``memory``)."""
    totals = {"compute": 0.0, "memory": 0.0}
    for entry in entries:
        totals[entry.bound_label] += entry.time
    totals["total"] = totals["compute"] + totals["memory"]
    totals["compute_fraction"] = totals["compute"] / totals["total"] if totals["total"] > 0 else 0.0
    return totals


def attention_layer_gemms(
    model: TransformerConfig,
    micro_batch: int,
    seq_len: int,
    tensor_parallel: int = 1,
    precision: Precision = Precision.FP16,
) -> List[GEMM]:
    """The forward GEMMs of the training-layer bound breakdown below."""
    spec = LayerExecutionSpec(
        model=model,
        micro_batch=micro_batch,
        seq_len=seq_len,
        tensor_parallel=tensor_parallel,
        precision=precision,
        with_dropout=True,
    )
    return TransformerLayerBuilder(spec).forward_gemms()


def attention_layer_bound_breakdown(
    model: TransformerConfig,
    accelerator: AcceleratorSpec,
    micro_batch: int,
    seq_len: int,
    tensor_parallel: int = 1,
    precision: Precision = Precision.FP16,
    kernel_model: Optional[DeviceKernelModel] = None,
) -> Dict[str, float]:
    """Compute- vs memory-bound GEMM time of one *training* transformer layer.

    Used by the technology-node scaling study (paper Fig. 7): as the logic
    node advances and compute throughput grows, GEMMs that used to be compute
    bound become DRAM bound.  Passing a ``kernel_model`` (for the same
    accelerator) reuses its memoized GEMM evaluations; the numbers are
    unchanged.
    """
    if kernel_model is None:
        kernel_model = DeviceKernelModel(accelerator=accelerator)
    compute_bound = 0.0
    memory_bound = 0.0
    gemms = attention_layer_gemms(
        model,
        micro_batch=micro_batch,
        seq_len=seq_len,
        tensor_parallel=tensor_parallel,
        precision=precision,
    )
    for point in kernel_model.gemm_model.evaluate_many(gemms):
        if point.bound is BoundType.COMPUTE:
            compute_bound += point.time
        else:
            memory_bound += point.time
    return {
        "compute_bound": compute_bound,
        "memory_bound": memory_bound,
        "total": compute_bound + memory_bound,
    }
