"""Structured result objects produced by the performance-prediction engine.

Reports deliberately store plain floats (seconds / bytes) plus enough context
to regenerate the paper's tables and figures: a per-kernel breakdown with
bound types, the compute / communication / other decomposition used by the
GPU-generation scaling study, and the memory footprints.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List

from ..memmodel.footprint import InferenceMemoryBreakdown, TrainingMemoryBreakdown
from ..perf.roofline import BoundType
from ..units import to_milliseconds


@dataclasses.dataclass(frozen=True)
class KernelTimeEntry:
    """Aggregated timing of one kernel type.

    Attributes:
        name: Kernel name (e.g. ``"mlp_h_to_4h"``).
        time: Time of a single invocation, in seconds.
        count: Number of invocations included in the aggregate.
        bound: The limiting resource of a single invocation.
        flops: FLOPs of a single invocation.
        bytes_moved: DRAM bytes of a single invocation.
    """

    name: str
    time: float
    count: int
    bound: BoundType
    flops: float = 0.0
    bytes_moved: float = 0.0

    @property
    def total_time(self) -> float:
        """Time across all invocations."""
        return self.time * self.count

    @property
    def is_compute_bound(self) -> bool:
        """Whether a single invocation is compute bound."""
        return self.bound is BoundType.COMPUTE

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view (the bound type becomes its string value)."""
        data = dataclasses.asdict(self)
        data["bound"] = self.bound.value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelTimeEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        data = dict(data)
        data["bound"] = BoundType(data["bound"])
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class TrainingReport:
    """End-to-end prediction of one distributed training step.

    All times are seconds per global batch (one optimizer step).
    """

    model_name: str
    system_name: str
    parallelism_label: str
    global_batch_size: int
    seq_len: int
    recompute_strategy: str

    compute_time: float
    recompute_time: float
    tp_communication_time: float
    pp_communication_time: float
    dp_communication_time: float
    bubble_time: float
    weight_update_time: float

    memory: TrainingMemoryBreakdown
    kernel_breakdown: List[KernelTimeEntry] = dataclasses.field(default_factory=list)

    @property
    def communication_time(self) -> float:
        """All network time: tensor-, pipeline-, and data-parallel collectives."""
        return self.tp_communication_time + self.pp_communication_time + self.dp_communication_time

    @property
    def other_time(self) -> float:
        """The paper's "other" category: pipeline bubbles plus the weight update."""
        return self.bubble_time + self.weight_update_time

    @property
    def step_time(self) -> float:
        """Total time per training step (per global batch), in seconds."""
        return self.compute_time + self.recompute_time + self.communication_time + self.other_time

    @property
    def step_time_ms(self) -> float:
        """Step time in milliseconds."""
        return to_milliseconds(self.step_time)

    def breakdown(self) -> Dict[str, float]:
        """The compute / communication / other decomposition (seconds)."""
        return {
            "compute": self.compute_time + self.recompute_time,
            "communication": self.communication_time,
            "other": self.other_time,
            "total": self.step_time,
        }

    def throughput_tokens_per_second(self) -> float:
        """Training throughput in tokens per second."""
        tokens = self.global_batch_size * self.seq_len
        return tokens / self.step_time if self.step_time > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view of the whole report, memory breakdown included."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name not in ("memory", "kernel_breakdown")
        }
        data["memory"] = self.memory.to_dict()
        data["kernel_breakdown"] = [entry.to_dict() for entry in self.kernel_breakdown]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainingReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["memory"] = TrainingMemoryBreakdown.from_dict(data["memory"])
        data["kernel_breakdown"] = [KernelTimeEntry.from_dict(entry) for entry in data.get("kernel_breakdown", [])]
        return cls(**data)

    def to_json(self, **kwargs: object) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "TrainingReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclasses.dataclass(frozen=True)
class PhaseReport:
    """Timing of one inference phase (prefill or the whole generation phase)."""

    name: str
    device_time: float
    communication_time: float
    compute_bound_time: float
    memory_bound_time: float
    kernel_breakdown: List[KernelTimeEntry] = dataclasses.field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Device kernels plus communication for this phase."""
        return self.device_time + self.communication_time

    @property
    def compute_bound_fraction(self) -> float:
        """Fraction of GEMM time spent in compute-bound kernels."""
        denominator = self.compute_bound_time + self.memory_bound_time
        return self.compute_bound_time / denominator if denominator > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "kernel_breakdown"
        }
        data["kernel_breakdown"] = [entry.to_dict() for entry in self.kernel_breakdown]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PhaseReport":
        """Rebuild a phase report from :meth:`to_dict` output."""
        data = dict(data)
        data["kernel_breakdown"] = [KernelTimeEntry.from_dict(entry) for entry in data.get("kernel_breakdown", [])]
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class InferenceReport:
    """End-to-end prediction of one inference request (prefill + generation)."""

    model_name: str
    system_name: str
    tensor_parallel: int
    batch_size: int
    prompt_tokens: int
    generated_tokens: int

    prefill: PhaseReport
    decode: PhaseReport
    memory: InferenceMemoryBreakdown

    @property
    def total_latency(self) -> float:
        """End-to-end latency in seconds."""
        return self.prefill.total_time + self.decode.total_time

    @property
    def total_latency_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return to_milliseconds(self.total_latency)

    @property
    def time_per_output_token(self) -> float:
        """Average decode time per generated token, in seconds."""
        if self.generated_tokens == 0:
            return 0.0
        return self.decode.total_time / self.generated_tokens

    @property
    def communication_time(self) -> float:
        """Total network time of the request."""
        return self.prefill.communication_time + self.decode.communication_time

    @property
    def device_time(self) -> float:
        """Total on-device kernel time of the request."""
        return self.prefill.device_time + self.decode.device_time

    def breakdown(self) -> Dict[str, float]:
        """The memory / communication decomposition used by the paper's Fig. 9."""
        return {
            "memory": self.device_time,
            "communication": self.communication_time,
            "total": self.total_latency,
        }

    def throughput_tokens_per_second(self) -> float:
        """Generation throughput: generated tokens per second across the batch."""
        if self.decode.total_time <= 0:
            return 0.0
        return self.batch_size * self.generated_tokens / self.decode.total_time

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view of the whole report, phases and memory included."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name not in ("prefill", "decode", "memory")
        }
        data["prefill"] = self.prefill.to_dict()
        data["decode"] = self.decode.to_dict()
        data["memory"] = self.memory.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InferenceReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["prefill"] = PhaseReport.from_dict(data["prefill"])
        data["decode"] = PhaseReport.from_dict(data["decode"])
        data["memory"] = InferenceMemoryBreakdown.from_dict(data["memory"])
        return cls(**data)

    def to_json(self, **kwargs: object) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "InferenceReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclasses.dataclass(frozen=True)
class GemmBottleneckEntry:
    """One row of the per-GEMM bottleneck table (paper Table 4)."""

    name: str
    time: float
    bound: BoundType
    m: int
    n: int
    k: int
    batch: int = 1
    arithmetic_intensity: float = 0.0

    @property
    def time_us(self) -> float:
        """Time in microseconds (the unit Table 4 uses)."""
        return self.time * 1e6

    @property
    def bound_label(self) -> str:
        """``"compute"`` or ``"memory"`` (cache-bound counts as memory)."""
        return "compute" if self.bound is BoundType.COMPUTE else "memory"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view (the bound type becomes its string value)."""
        data = dataclasses.asdict(self)
        data["bound"] = self.bound.value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GemmBottleneckEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        data = dict(data)
        data["bound"] = BoundType(data["bound"])
        return cls(**data)


def aggregate_kernel_entries(entries: List[KernelTimeEntry]) -> Dict[str, KernelTimeEntry]:
    """Merge kernel entries that share a name by summing their counts."""
    merged: Dict[str, KernelTimeEntry] = {}
    for entry in entries:
        if entry.name in merged:
            existing = merged[entry.name]
            merged[entry.name] = dataclasses.replace(existing, count=existing.count + entry.count)
        else:
            merged[entry.name] = entry
    return merged
