"""Core performance-prediction engine: training, inference, bottleneck analysis."""

from .bottleneck import (
    attention_layer_bound_breakdown,
    decode_gemm_table,
    gemm_time_by_bound,
    prefill_gemm_table,
)
from .engine import PerformancePredictionEngine
from .inference import InferencePerformanceModel
from .reports import (
    GemmBottleneckEntry,
    InferenceReport,
    KernelTimeEntry,
    PhaseReport,
    TrainingReport,
    aggregate_kernel_entries,
)
from .stepcost import DecodeRun, StepCost, StepCostModel
from .training import OPTIMIZER_BYTES_PER_PARAMETER, TrainingPerformanceModel

__all__ = [
    "DecodeRun",
    "GemmBottleneckEntry",
    "InferencePerformanceModel",
    "InferenceReport",
    "KernelTimeEntry",
    "OPTIMIZER_BYTES_PER_PARAMETER",
    "PerformancePredictionEngine",
    "PhaseReport",
    "StepCost",
    "StepCostModel",
    "TrainingPerformanceModel",
    "TrainingReport",
    "aggregate_kernel_entries",
    "attention_layer_bound_breakdown",
    "decode_gemm_table",
    "gemm_time_by_bound",
    "prefill_gemm_table",
]
