"""End-to-end inference latency prediction (prefill + autoregressive generation).

Inference typically runs with tensor parallelism only, across a handful of
devices within one node (paper Section 1.3).  The model prices:

* the **prefill / summarization** phase: a forward pass over the whole prompt,
  whose GEMMs may be compute- or memory-bound depending on the accelerator,
  batch size, and precision (Table 4 / Fig. 8 of the paper),
* the **generation / decode** phase: one forward pass per generated token over
  a single query token, dominated by streaming the weights and the KV-cache
  from DRAM, plus the per-layer tensor-parallel all-reduces whose latency term
  matters at these tiny message sizes (hence the double-binary-tree algorithm).

The decode phase supports two pricing modes (``decode_mode``):

* ``"average"`` (default): one representative decode step at the mid-point KV
  length, multiplied by the number of generated tokens -- the fast closed form.
* ``"exact"``: every generated token is priced at its true KV-cache length;
  the per-token GEMMs are evaluated as one batch through the vectorized
  roofline backend (:mod:`repro.perf.batched`), so exact pricing stays cheap.

All per-phase pricing lives in the reusable step-cost layer
(:class:`~repro.core.stepcost.StepCostModel`); this module supplies the
request-level workload description, the memory admission check, and the
:class:`~repro.core.reports.InferenceReport` assembly on top of it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..comm.fabric import CollectiveModel
from ..errors import ConfigurationError, MemoryCapacityError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..memmodel.footprint import InferenceMemoryBreakdown, inference_memory_breakdown
from ..models.transformer import TransformerConfig
from ..perf.kernels import DeviceKernelModel
from ..workload.inference import InferencePhaseSpec
from ..workload.operators import GEMM, Operator
from ..workload.transformer_layer import TransformerLayerBuilder
from .reports import InferenceReport
from .stepcost import StepCostModel

#: Supported decode pricing modes.
DECODE_MODES = ("average", "exact")


@dataclasses.dataclass
class InferencePlan:
    """The priced-workload description of one :meth:`~InferencePerformanceModel.predict` call.

    Produced by :meth:`InferencePerformanceModel.plan` and consumed by
    :meth:`InferencePerformanceModel.finish`: the plan carries the validated
    spec, the memory admission result, and every *already built* operator
    list of the request, so ``finish(plan)`` prices the request without
    reconstructing the workload graph.  The split exists for the
    cross-scenario batch planner (:mod:`repro.sweep.batchplan`), which
    collects :meth:`gemm_queries` across many plans, prices them in one
    batched roofline call, and only then finishes each plan -- bit-identical
    to a direct ``predict`` (the per-op evaluations become memo hits).

    Attributes:
        spec: The validated request description.
        memory: The per-device memory breakdown (already admission-checked).
        decode_mode: Resolved decode pricing mode (``"average"``/``"exact"``).
        tp_scope: Collective scope of the tensor-parallel group.
        lm_head: The logits GEMM, or ``None``.
        prefill_ops: Compute operators of one prefill layer.
        prefill_comms: Communication operators of one prefill layer.
        decode_ops: Compute operators of the representative decode layer
            (average mode only).
        decode_comms: Its communication operators (average mode only).
        decode_prepared: Per-step builders and operator lists (exact mode
            only; see :meth:`StepCostModel.decode_exact_prepared`).
    """

    spec: InferencePhaseSpec
    memory: InferenceMemoryBreakdown
    decode_mode: str
    tp_scope: str
    lm_head: Optional[GEMM]
    prefill_ops: List[Operator]
    prefill_comms: List[Operator]
    decode_ops: Optional[List[Operator]] = None
    decode_comms: Optional[List[Operator]] = None
    decode_prepared: Optional[Tuple[List[TransformerLayerBuilder], List[List[Operator]]]] = None

    def gemm_queries(self) -> List[GEMM]:
        """Every GEMM the finished report will ask the kernel model to price."""
        gemms = [op for op in self.prefill_ops if isinstance(op, GEMM)]
        if self.decode_ops is not None:
            gemms.extend(op for op in self.decode_ops if isinstance(op, GEMM))
        if self.decode_prepared is not None:
            gemms.extend(
                op for ops in self.decode_prepared[1] for op in ops if isinstance(op, GEMM)
            )
        if self.lm_head is not None:
            gemms.append(self.lm_head)
        return gemms


@dataclasses.dataclass
class InferencePerformanceModel:
    """Predicts LLM inference latency on a (usually single-node) system.

    Attributes:
        system: The hardware system; inference uses ``tensor_parallel`` of its
            devices.
        kernel_model: Device kernel timing model (defaults to the system's
            accelerator with standard GEMV utilization).
        collective_model: Communication model; defaults to the double-binary-
            tree algorithm, which is the latency-optimal choice for the small
            messages of the decode phase.
        check_memory: Whether to raise when weights + KV-cache exceed the
            aggregate device memory of the tensor-parallel group.
        decode_mode: Default decode pricing mode: ``"average"`` prices one
            representative step at the mid-point KV length, ``"exact"`` prices
            every generated token at its true KV length through the batched
            roofline backend.  Overridable per :meth:`predict` call.
        step_cost: The step-cost layer the phase reports are priced through
            (built in ``__post_init__``; shares the kernel and collective
            models above).
    """

    system: SystemSpec
    kernel_model: Optional[DeviceKernelModel] = None
    collective_model: Optional[CollectiveModel] = None
    check_memory: bool = True
    decode_mode: str = "average"
    step_cost: StepCostModel = dataclasses.field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.decode_mode not in DECODE_MODES:
            raise ConfigurationError(f"decode_mode must be one of {DECODE_MODES}, got {self.decode_mode!r}")
        self.step_cost = StepCostModel(
            system=self.system,
            kernel_model=self.kernel_model,
            collective_model=self.collective_model,
        )
        self.kernel_model = self.step_cost.kernel_model
        self.collective_model = self.step_cost.collective_model

    # -- main entry point -----------------------------------------------------------------

    def predict(
        self,
        model: TransformerConfig,
        batch_size: int = 1,
        prompt_tokens: int = 200,
        generated_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
        decode_mode: Optional[str] = None,
    ) -> InferenceReport:
        """Predict the end-to-end latency of one inference request.

        Args:
            model: The transformer architecture being served.
            batch_size: Sequences served concurrently.
            prompt_tokens: Prompt (summarization) length per sequence.
            generated_tokens: Tokens generated per sequence.
            tensor_parallel: TP degree (number of devices used).
            precision: Weight/activation precision.
            include_lm_head: Whether to include the logits GEMM.
            decode_mode: ``"average"`` or ``"exact"``; defaults to the
                model-level :attr:`decode_mode`.

        Raises:
            MemoryCapacityError: When the weights plus the KV-cache do not fit
                into the devices' memory and ``check_memory`` is enabled.
        """
        return self.finish(
            self.plan(
                model,
                batch_size=batch_size,
                prompt_tokens=prompt_tokens,
                generated_tokens=generated_tokens,
                tensor_parallel=tensor_parallel,
                precision=precision,
                include_lm_head=include_lm_head,
                decode_mode=decode_mode,
            )
        )

    def plan(
        self,
        model: TransformerConfig,
        batch_size: int = 1,
        prompt_tokens: int = 200,
        generated_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
        decode_mode: Optional[str] = None,
    ) -> InferencePlan:
        """Validate the request and build its workload graph without pricing it.

        Runs everything :meth:`predict` does up to (and including) the memory
        admission check and the operator-list construction, but issues no
        kernel or collective queries.  ``finish(plan(...))`` is exactly
        :meth:`predict`; holding the plan lets a batch planner price many
        requests' GEMMs in one call first.

        Raises:
            MemoryCapacityError: Same admission check as :meth:`predict`.
        """
        decode_mode = self.decode_mode if decode_mode is None else decode_mode
        if decode_mode not in DECODE_MODES:
            raise ConfigurationError(f"decode_mode must be one of {DECODE_MODES}, got {decode_mode!r}")
        spec = InferencePhaseSpec(
            model=model,
            batch_size=batch_size,
            prompt_len=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=tensor_parallel,
            precision=precision,
            include_lm_head=include_lm_head,
        )
        memory = inference_memory_breakdown(
            model,
            batch_size=batch_size,
            context_len=prompt_tokens + generated_tokens,
            precision=precision,
            tensor_parallel=tensor_parallel,
        )
        if self.check_memory and not memory.fits(self.system.accelerator.dram_capacity):
            raise MemoryCapacityError(
                f"{model.name} with batch {batch_size} needs {memory.total_bytes / 1e9:.1f} GB per device, "
                f"but {self.system.accelerator.name} provides {self.system.accelerator.dram_capacity / 1e9:.1f} GB"
            )

        tp_scope = self.step_cost.tp_scope(tensor_parallel)
        prefill_builder = TransformerLayerBuilder(spec.prefill_layer_spec())
        plan = InferencePlan(
            spec=spec,
            memory=memory,
            decode_mode=decode_mode,
            tp_scope=tp_scope,
            lm_head=self.step_cost.lm_head_gemm(spec),
            prefill_ops=prefill_builder.forward_compute_ops(),
            prefill_comms=prefill_builder.forward_communication(scope=tp_scope),
        )
        if decode_mode == "exact":
            plan.decode_prepared = self.step_cost.decode_exact_prepared(spec)
        else:
            decode_builder = TransformerLayerBuilder(spec.decode_layer_spec(spec.average_decode_kv_len))
            plan.decode_ops = decode_builder.forward_compute_ops()
            plan.decode_comms = decode_builder.forward_communication(scope=tp_scope)
        return plan

    def finish(self, plan: InferencePlan) -> InferenceReport:
        """Price a plan into the final report (see :meth:`plan`)."""
        spec = plan.spec
        model = spec.model
        prefill = self.step_cost.phase_report(
            name="prefill",
            builder=None,
            num_layers=model.num_layers,
            lm_head=plan.lm_head,
            repeats=1,
            tp_scope=plan.tp_scope,
            ops=plan.prefill_ops,
            comms=plan.prefill_comms,
        )
        if plan.decode_mode == "exact":
            decode = self.step_cost.decode_report_exact(
                spec,
                num_layers=model.num_layers,
                lm_head=plan.lm_head,
                tp_scope=plan.tp_scope,
                prepared=plan.decode_prepared,
            )
        else:
            decode = self.step_cost.phase_report(
                name="decode",
                builder=None,
                num_layers=model.num_layers,
                lm_head=plan.lm_head,
                repeats=max(0, spec.generated_tokens),
                tp_scope=plan.tp_scope,
                ops=plan.decode_ops,
                comms=plan.decode_comms,
            )
        return InferenceReport(
            model_name=model.name,
            system_name=self.system.name,
            tensor_parallel=spec.tensor_parallel,
            batch_size=spec.batch_size,
            prompt_tokens=spec.prompt_len,
            generated_tokens=spec.generated_tokens,
            prefill=prefill,
            decode=decode,
            memory=plan.memory,
        )
