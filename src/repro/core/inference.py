"""End-to-end inference latency prediction (prefill + autoregressive generation).

Inference typically runs with tensor parallelism only, across a handful of
devices within one node (paper Section 1.3).  The model prices:

* the **prefill / summarization** phase: a forward pass over the whole prompt,
  whose GEMMs may be compute- or memory-bound depending on the accelerator,
  batch size, and precision (Table 4 / Fig. 8 of the paper),
* the **generation / decode** phase: one forward pass per generated token over
  a single query token, dominated by streaming the weights and the KV-cache
  from DRAM, plus the per-layer tensor-parallel all-reduces whose latency term
  matters at these tiny message sizes (hence the double-binary-tree algorithm).

The decode phase supports two pricing modes (``decode_mode``):

* ``"average"`` (default): one representative decode step at the mid-point KV
  length, multiplied by the number of generated tokens -- the fast closed form.
* ``"exact"``: every generated token is priced at its true KV-cache length;
  the per-token GEMMs are evaluated as one batch through the vectorized
  roofline backend (:mod:`repro.perf.batched`), so exact pricing stays cheap.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..comm.collectives import CollectiveAlgorithm
from ..comm.fabric import CollectiveModel
from ..errors import ConfigurationError, MemoryCapacityError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..memmodel.footprint import inference_memory_breakdown
from ..models.transformer import TransformerConfig
from ..perf.kernels import DeviceKernelModel
from ..perf.roofline import BoundType
from ..workload.inference import InferencePhaseSpec
from ..workload.operators import GEMM
from ..workload.transformer_layer import TransformerLayerBuilder
from .reports import InferenceReport, KernelTimeEntry, PhaseReport

#: Supported decode pricing modes.
DECODE_MODES = ("average", "exact")


@dataclasses.dataclass
class InferencePerformanceModel:
    """Predicts LLM inference latency on a (usually single-node) system.

    Attributes:
        system: The hardware system; inference uses ``tensor_parallel`` of its
            devices.
        kernel_model: Device kernel timing model (defaults to the system's
            accelerator with standard GEMV utilization).
        collective_model: Communication model; defaults to the double-binary-
            tree algorithm, which is the latency-optimal choice for the small
            messages of the decode phase.
        check_memory: Whether to raise when weights + KV-cache exceed the
            aggregate device memory of the tensor-parallel group.
        decode_mode: Default decode pricing mode: ``"average"`` prices one
            representative step at the mid-point KV length, ``"exact"`` prices
            every generated token at its true KV length through the batched
            roofline backend.  Overridable per :meth:`predict` call.
    """

    system: SystemSpec
    kernel_model: Optional[DeviceKernelModel] = None
    collective_model: Optional[CollectiveModel] = None
    check_memory: bool = True
    decode_mode: str = "average"

    def __post_init__(self) -> None:
        if self.decode_mode not in DECODE_MODES:
            raise ConfigurationError(f"decode_mode must be one of {DECODE_MODES}, got {self.decode_mode!r}")
        if self.kernel_model is None:
            self.kernel_model = DeviceKernelModel(accelerator=self.system.accelerator)
        if self.collective_model is None:
            self.collective_model = CollectiveModel(
                system=self.system,
                algorithm=CollectiveAlgorithm.DOUBLE_BINARY_TREE,
            )

    # -- phase pricing ---------------------------------------------------------------

    def _phase_report(
        self,
        name: str,
        builder: TransformerLayerBuilder,
        num_layers: int,
        lm_head: Optional[GEMM],
        repeats: int,
        tp_scope: str,
    ) -> PhaseReport:
        """Price one phase: ``repeats`` executions of ``num_layers`` layers."""
        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        entries: List[KernelTimeEntry] = []
        for op in builder.forward_compute_ops():
            point = self.kernel_model.evaluate(op)
            time = point.time + self.kernel_model.overhead(op)
            device_time += time * num_layers
            if isinstance(op, GEMM):
                if point.bound is BoundType.COMPUTE:
                    compute_bound_time += point.time * num_layers
                else:
                    memory_bound_time += point.time * num_layers
            entries.append(
                KernelTimeEntry(
                    name=op.name,
                    time=time,
                    count=num_layers * repeats,
                    bound=point.bound,
                    flops=op.flops,
                    bytes_moved=point.level_bytes.get("DRAM", op.bytes_total),
                )
            )
        communication_time = 0.0
        for comm in builder.forward_communication(scope=tp_scope):
            communication_time += self.collective_model.time(comm) * num_layers
        if lm_head is not None:
            head_point, head_time, entry = self._lm_head_entry(lm_head, count=repeats)
            device_time += head_time
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time
            else:
                memory_bound_time += head_point.time
            entries.append(entry)
        return PhaseReport(
            name=name,
            device_time=device_time * repeats,
            communication_time=communication_time * repeats,
            compute_bound_time=compute_bound_time * repeats,
            memory_bound_time=memory_bound_time * repeats,
            kernel_breakdown=entries,
        )

    def _lm_head_entry(self, lm_head: GEMM, count: int):
        """Price the logits GEMM once and shape its breakdown entry.

        Shared by the average and exact decode paths (the lm_head cost does
        not depend on the KV length); callers scale the returned times by
        their own repeat count.
        """
        head_point = self.kernel_model.evaluate(lm_head)
        head_time = head_point.time + self.kernel_model.overhead(lm_head)
        entry = KernelTimeEntry(
            name=lm_head.name,
            time=head_time,
            count=count,
            bound=head_point.bound,
            flops=lm_head.flops,
            bytes_moved=head_point.level_bytes.get("DRAM", lm_head.bytes_total),
        )
        return head_point, head_time, entry

    def _decode_report_exact(
        self,
        spec: InferencePhaseSpec,
        num_layers: int,
        lm_head: Optional[GEMM],
        tp_scope: str,
    ) -> PhaseReport:
        """Price the decode phase with every token at its true KV length.

        The KV-cache grows from ``prompt_len`` to ``prompt_len + T - 1`` over
        the ``T`` generated tokens, so the per-token operator lists differ
        only in the KV-dependent kernels (attention scores/context, softmax).
        All GEMMs of all steps are evaluated in **one** call through the
        vectorized roofline backend; the kernel breakdown reports the mean
        per-invocation time (so ``entry.time * entry.count`` stays the exact
        phase total) and the bound type of the median-KV step.
        """
        steps = max(0, spec.generated_tokens)
        if steps == 0:
            return PhaseReport(
                name="decode",
                device_time=0.0,
                communication_time=0.0,
                compute_bound_time=0.0,
                memory_bound_time=0.0,
                kernel_breakdown=[],
            )
        builders = [
            TransformerLayerBuilder(spec.decode_layer_spec(spec.prompt_len + step))
            for step in range(steps)
        ]
        step_ops = [builder.forward_compute_ops() for builder in builders]
        # One batched evaluation warms the kernel memo for every GEMM of every
        # step; the per-slot loop below then only takes cache hits.
        self.kernel_model.gemm_model.evaluate_many(
            [op for ops in step_ops for op in ops if isinstance(op, GEMM)]
        )

        device_time = 0.0
        compute_bound_time = 0.0
        memory_bound_time = 0.0
        entries: List[KernelTimeEntry] = []
        median_step = steps // 2
        for slot in zip(*step_ops):
            overhead = self.kernel_model.overhead(slot[0])
            points = [self.kernel_model.evaluate(op) for op in slot]
            slot_kernel_time = sum(point.time for point in points)
            slot_time = slot_kernel_time + overhead * steps
            device_time += slot_time * num_layers
            if isinstance(slot[0], GEMM):
                slot_compute = sum(point.time for point in points if point.bound is BoundType.COMPUTE)
                compute_bound_time += slot_compute * num_layers
                memory_bound_time += (slot_kernel_time - slot_compute) * num_layers
            entries.append(
                KernelTimeEntry(
                    name=slot[0].name,
                    time=slot_time / steps,
                    count=num_layers * steps,
                    bound=points[median_step].bound,
                    flops=sum(op.flops for op in slot) / steps,
                    bytes_moved=sum(
                        point.level_bytes.get("DRAM", op.bytes_total) for op, point in zip(slot, points)
                    )
                    / steps,
                )
            )
        communication_time = 0.0
        for comm in builders[0].forward_communication(scope=tp_scope):
            communication_time += self.collective_model.time(comm) * num_layers
        communication_time *= steps
        if lm_head is not None:
            head_point, head_time, entry = self._lm_head_entry(lm_head, count=steps)
            device_time += head_time * steps
            if head_point.bound is BoundType.COMPUTE:
                compute_bound_time += head_point.time * steps
            else:
                memory_bound_time += head_point.time * steps
            entries.append(entry)
        return PhaseReport(
            name="decode",
            device_time=device_time,
            communication_time=communication_time,
            compute_bound_time=compute_bound_time,
            memory_bound_time=memory_bound_time,
            kernel_breakdown=entries,
        )

    def _lm_head(self, spec: InferencePhaseSpec) -> Optional[GEMM]:
        if not spec.include_lm_head:
            return None
        vocab_per_rank = max(1, spec.model.vocab_size // spec.tensor_parallel)
        return GEMM(
            name="lm_head",
            precision=spec.precision,
            m=spec.batch_size,
            n=vocab_per_rank,
            k=spec.model.hidden_size,
            weight_operand=True,
        )

    # -- main entry point -----------------------------------------------------------------

    def predict(
        self,
        model: TransformerConfig,
        batch_size: int = 1,
        prompt_tokens: int = 200,
        generated_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
        decode_mode: Optional[str] = None,
    ) -> InferenceReport:
        """Predict the end-to-end latency of one inference request.

        Args:
            model: The transformer architecture being served.
            batch_size: Sequences served concurrently.
            prompt_tokens: Prompt (summarization) length per sequence.
            generated_tokens: Tokens generated per sequence.
            tensor_parallel: TP degree (number of devices used).
            precision: Weight/activation precision.
            include_lm_head: Whether to include the logits GEMM.
            decode_mode: ``"average"`` or ``"exact"``; defaults to the
                model-level :attr:`decode_mode`.

        Raises:
            MemoryCapacityError: When the weights plus the KV-cache do not fit
                into the devices' memory and ``check_memory`` is enabled.
        """
        decode_mode = self.decode_mode if decode_mode is None else decode_mode
        if decode_mode not in DECODE_MODES:
            raise ConfigurationError(f"decode_mode must be one of {DECODE_MODES}, got {decode_mode!r}")
        spec = InferencePhaseSpec(
            model=model,
            batch_size=batch_size,
            prompt_len=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=tensor_parallel,
            precision=precision,
            include_lm_head=include_lm_head,
        )
        memory = inference_memory_breakdown(
            model,
            batch_size=batch_size,
            context_len=prompt_tokens + generated_tokens,
            precision=precision,
            tensor_parallel=tensor_parallel,
        )
        if self.check_memory and not memory.fits(self.system.accelerator.dram_capacity):
            raise MemoryCapacityError(
                f"{model.name} with batch {batch_size} needs {memory.total_bytes / 1e9:.1f} GB per device, "
                f"but {self.system.accelerator.name} provides {self.system.accelerator.dram_capacity / 1e9:.1f} GB"
            )

        tp_scope = "intra_node" if tensor_parallel <= self.system.devices_per_node else "inter_node"

        prefill_builder = TransformerLayerBuilder(spec.prefill_layer_spec())
        prefill = self._phase_report(
            name="prefill",
            builder=prefill_builder,
            num_layers=model.num_layers,
            lm_head=self._lm_head(spec),
            repeats=1,
            tp_scope=tp_scope,
        )

        if decode_mode == "exact":
            decode = self._decode_report_exact(
                spec,
                num_layers=model.num_layers,
                lm_head=self._lm_head(spec),
                tp_scope=tp_scope,
            )
        else:
            decode_builder = TransformerLayerBuilder(spec.decode_layer_spec(spec.average_decode_kv_len))
            decode = self._phase_report(
                name="decode",
                builder=decode_builder,
                num_layers=model.num_layers,
                lm_head=self._lm_head(spec),
                repeats=max(0, generated_tokens),
                tp_scope=tp_scope,
            )

        return InferenceReport(
            model_name=model.name,
            system_name=self.system.name,
            tensor_parallel=tensor_parallel,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            prefill=prefill,
            decode=decode,
            memory=memory,
        )
