"""End-to-end inference latency prediction (prefill + autoregressive generation).

Inference typically runs with tensor parallelism only, across a handful of
devices within one node (paper Section 1.3).  The model prices:

* the **prefill / summarization** phase: a forward pass over the whole prompt,
  whose GEMMs may be compute- or memory-bound depending on the accelerator,
  batch size, and precision (Table 4 / Fig. 8 of the paper),
* the **generation / decode** phase: one forward pass per generated token over
  a single query token, dominated by streaming the weights and the KV-cache
  from DRAM, plus the per-layer tensor-parallel all-reduces whose latency term
  matters at these tiny message sizes (hence the double-binary-tree algorithm).

The decode phase supports two pricing modes (``decode_mode``):

* ``"average"`` (default): one representative decode step at the mid-point KV
  length, multiplied by the number of generated tokens -- the fast closed form.
* ``"exact"``: every generated token is priced at its true KV-cache length;
  the per-token GEMMs are evaluated as one batch through the vectorized
  roofline backend (:mod:`repro.perf.batched`), so exact pricing stays cheap.

All per-phase pricing lives in the reusable step-cost layer
(:class:`~repro.core.stepcost.StepCostModel`); this module supplies the
request-level workload description, the memory admission check, and the
:class:`~repro.core.reports.InferenceReport` assembly on top of it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..comm.fabric import CollectiveModel
from ..errors import ConfigurationError, MemoryCapacityError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..memmodel.footprint import inference_memory_breakdown
from ..models.transformer import TransformerConfig
from ..perf.kernels import DeviceKernelModel
from ..workload.inference import InferencePhaseSpec
from ..workload.transformer_layer import TransformerLayerBuilder
from .reports import InferenceReport
from .stepcost import StepCostModel

#: Supported decode pricing modes.
DECODE_MODES = ("average", "exact")


@dataclasses.dataclass
class InferencePerformanceModel:
    """Predicts LLM inference latency on a (usually single-node) system.

    Attributes:
        system: The hardware system; inference uses ``tensor_parallel`` of its
            devices.
        kernel_model: Device kernel timing model (defaults to the system's
            accelerator with standard GEMV utilization).
        collective_model: Communication model; defaults to the double-binary-
            tree algorithm, which is the latency-optimal choice for the small
            messages of the decode phase.
        check_memory: Whether to raise when weights + KV-cache exceed the
            aggregate device memory of the tensor-parallel group.
        decode_mode: Default decode pricing mode: ``"average"`` prices one
            representative step at the mid-point KV length, ``"exact"`` prices
            every generated token at its true KV length through the batched
            roofline backend.  Overridable per :meth:`predict` call.
        step_cost: The step-cost layer the phase reports are priced through
            (built in ``__post_init__``; shares the kernel and collective
            models above).
    """

    system: SystemSpec
    kernel_model: Optional[DeviceKernelModel] = None
    collective_model: Optional[CollectiveModel] = None
    check_memory: bool = True
    decode_mode: str = "average"
    step_cost: StepCostModel = dataclasses.field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.decode_mode not in DECODE_MODES:
            raise ConfigurationError(f"decode_mode must be one of {DECODE_MODES}, got {self.decode_mode!r}")
        self.step_cost = StepCostModel(
            system=self.system,
            kernel_model=self.kernel_model,
            collective_model=self.collective_model,
        )
        self.kernel_model = self.step_cost.kernel_model
        self.collective_model = self.step_cost.collective_model

    # -- main entry point -----------------------------------------------------------------

    def predict(
        self,
        model: TransformerConfig,
        batch_size: int = 1,
        prompt_tokens: int = 200,
        generated_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        include_lm_head: bool = True,
        decode_mode: Optional[str] = None,
    ) -> InferenceReport:
        """Predict the end-to-end latency of one inference request.

        Args:
            model: The transformer architecture being served.
            batch_size: Sequences served concurrently.
            prompt_tokens: Prompt (summarization) length per sequence.
            generated_tokens: Tokens generated per sequence.
            tensor_parallel: TP degree (number of devices used).
            precision: Weight/activation precision.
            include_lm_head: Whether to include the logits GEMM.
            decode_mode: ``"average"`` or ``"exact"``; defaults to the
                model-level :attr:`decode_mode`.

        Raises:
            MemoryCapacityError: When the weights plus the KV-cache do not fit
                into the devices' memory and ``check_memory`` is enabled.
        """
        decode_mode = self.decode_mode if decode_mode is None else decode_mode
        if decode_mode not in DECODE_MODES:
            raise ConfigurationError(f"decode_mode must be one of {DECODE_MODES}, got {decode_mode!r}")
        spec = InferencePhaseSpec(
            model=model,
            batch_size=batch_size,
            prompt_len=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=tensor_parallel,
            precision=precision,
            include_lm_head=include_lm_head,
        )
        memory = inference_memory_breakdown(
            model,
            batch_size=batch_size,
            context_len=prompt_tokens + generated_tokens,
            precision=precision,
            tensor_parallel=tensor_parallel,
        )
        if self.check_memory and not memory.fits(self.system.accelerator.dram_capacity):
            raise MemoryCapacityError(
                f"{model.name} with batch {batch_size} needs {memory.total_bytes / 1e9:.1f} GB per device, "
                f"but {self.system.accelerator.name} provides {self.system.accelerator.dram_capacity / 1e9:.1f} GB"
            )

        tp_scope = self.step_cost.tp_scope(tensor_parallel)

        prefill_builder = TransformerLayerBuilder(spec.prefill_layer_spec())
        prefill = self.step_cost.phase_report(
            name="prefill",
            builder=prefill_builder,
            num_layers=model.num_layers,
            lm_head=self.step_cost.lm_head_gemm(spec),
            repeats=1,
            tp_scope=tp_scope,
        )

        if decode_mode == "exact":
            decode = self.step_cost.decode_report_exact(
                spec,
                num_layers=model.num_layers,
                lm_head=self.step_cost.lm_head_gemm(spec),
                tp_scope=tp_scope,
            )
        else:
            decode_builder = TransformerLayerBuilder(spec.decode_layer_spec(spec.average_decode_kv_len))
            decode = self.step_cost.phase_report(
                name="decode",
                builder=decode_builder,
                num_layers=model.num_layers,
                lm_head=self.step_cost.lm_head_gemm(spec),
                repeats=max(0, generated_tokens),
                tp_scope=tp_scope,
            )

        return InferenceReport(
            model_name=model.name,
            system_name=self.system.name,
            tensor_parallel=tensor_parallel,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            prefill=prefill,
            decode=decode,
            memory=memory,
        )
