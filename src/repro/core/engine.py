"""Facade: one object that exposes the whole performance-prediction pipeline.

``PerformancePredictionEngine`` wires the device kernel model, the collective
model, the memory model, and the training/inference predictors together for a
given :class:`~repro.hardware.cluster.SystemSpec`.  It is the recommended
entry point for users of the library::

    from repro import PerformancePredictionEngine, build_system, get_model
    from repro.parallelism import ParallelismConfig

    system = build_system("A100", num_devices=64, inter_node="HDR-IB")
    engine = PerformancePredictionEngine(system)
    report = engine.predict_training(
        get_model("GPT-175B"),
        ParallelismConfig(tensor_parallel=8, pipeline_parallel=8),
        global_batch_size=64,
    )
    print(report.step_time, report.breakdown())
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..comm.fabric import CollectiveModel, shared_collective_model
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..memmodel.activations import RecomputeStrategy
from ..memmodel.footprint import (
    InferenceMemoryBreakdown,
    TrainingMemoryBreakdown,
    inference_memory_breakdown,
    training_memory_breakdown,
)
from ..models.transformer import TransformerConfig
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig
from ..perf.kernels import DeviceKernelModel
from ..serving.fleet import FleetConfig, FleetReport, FleetSimulator
from ..serving.report import ServingReport, ServingSLO
from ..serving.request import Request, TraceConfig
from ..serving.scheduler import SchedulerConfig
from ..serving.simulator import ServingSimulator
from .bottleneck import decode_gemm_table, prefill_gemm_table
from .inference import InferencePerformanceModel
from .reports import GemmBottleneckEntry, InferenceReport, TrainingReport
from .training import TrainingPerformanceModel


class PerformancePredictionEngine:
    """High-level facade over the training and inference performance models."""

    def __init__(
        self,
        system: SystemSpec,
        kernel_model: Optional[DeviceKernelModel] = None,
        collective_model: Optional[CollectiveModel] = None,
    ):
        self.system = system
        self.kernel_model = kernel_model or DeviceKernelModel(accelerator=system.accelerator)
        self.collective_model = collective_model or shared_collective_model(system)
        self.training_model = TrainingPerformanceModel(
            system=system,
            kernel_model=self.kernel_model,
            collective_model=self.collective_model,
        )
        self.inference_model = InferencePerformanceModel(
            system=system,
            kernel_model=self.kernel_model,
        )

    @property
    def step_cost(self):
        """The engine's shared step-cost pricing layer.

        One :class:`~repro.core.stepcost.StepCostModel` per engine (and, via
        the sweep subsystem's per-system engine cache, one per system per
        process): its operator, collective, and attention-time caches survive
        across every inference prediction and serving simulation this engine
        runs, which is what keeps frontier sweeps from re-pricing the same
        kernels per scenario.  Its ``cache_hits`` / ``cache_misses`` counters
        expose the reuse.
        """
        return self.inference_model.step_cost

    # -- training -------------------------------------------------------------------

    def predict_training(
        self,
        model: "TransformerConfig | str",
        parallelism: ParallelismConfig,
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: Precision = Precision.FP16,
        recompute: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
    ) -> TrainingReport:
        """Predict the time of one training step; see :class:`TrainingPerformanceModel`."""
        model = get_model(model) if isinstance(model, str) else model
        precision = Precision.parse(precision)
        return self.training_model.predict(
            model,
            parallelism,
            global_batch_size=global_batch_size,
            seq_len=seq_len,
            precision=precision,
            recompute=recompute,
        )

    def training_memory(
        self,
        model: "TransformerConfig | str",
        parallelism: ParallelismConfig,
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: Precision = Precision.FP16,
        recompute: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
    ) -> TrainingMemoryBreakdown:
        """Per-device training memory breakdown for a parallelism configuration."""
        model = get_model(model) if isinstance(model, str) else model
        return training_memory_breakdown(
            model,
            parallelism,
            global_batch_size=global_batch_size,
            seq_len=seq_len,
            precision=precision,
            strategy=recompute,
        )

    # -- inference -------------------------------------------------------------------

    def predict_inference(
        self,
        model: "TransformerConfig | str",
        batch_size: int = 1,
        prompt_tokens: int = 200,
        generated_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        decode_mode: Optional[str] = None,
    ) -> InferenceReport:
        """Predict end-to-end inference latency; see :class:`InferencePerformanceModel`.

        ``decode_mode`` selects between the default ``"average"`` closed form
        and the batched ``"exact"`` per-token KV pricing.
        """
        model = get_model(model) if isinstance(model, str) else model
        precision = Precision.parse(precision)
        return self.inference_model.predict(
            model,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=tensor_parallel,
            precision=precision,
            decode_mode=decode_mode,
        )

    def inference_memory(
        self,
        model: "TransformerConfig | str",
        batch_size: int = 1,
        context_len: int = 400,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
    ) -> InferenceMemoryBreakdown:
        """Per-device inference memory breakdown (weights + KV-cache)."""
        model = get_model(model) if isinstance(model, str) else model
        return inference_memory_breakdown(
            model,
            batch_size=batch_size,
            context_len=context_len,
            precision=precision,
            tensor_parallel=tensor_parallel,
        )

    # -- serving -------------------------------------------------------------------------

    def predict_serving(
        self,
        model: "TransformerConfig | str",
        workload: "TraceConfig | Sequence[Request]",
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        scheduler: Optional[SchedulerConfig] = None,
        slo: Optional[ServingSLO] = None,
        include_lm_head: bool = True,
        fused: bool = True,
    ) -> ServingReport:
        """Simulate request-level serving of ``model`` on this system.

        ``workload`` is a seeded :class:`~repro.serving.request.TraceConfig`
        (or an explicit request list); the simulation advances in continuous-
        batching prefill and epoch-fused decode steps priced by this engine's
        shared :attr:`step_cost` layer, so repeated simulations (e.g. a load-
        frontier sweep) reuse one set of operator/attention-time caches.
        ``fused=False`` selects the step-by-step reference loop (bit-identical
        results, much slower).  See
        :class:`~repro.serving.simulator.ServingSimulator`.
        """
        model = get_model(model) if isinstance(model, str) else model
        precision = Precision.parse(precision)
        simulator = ServingSimulator(
            system=self.system,
            model=model,
            tensor_parallel=tensor_parallel,
            precision=precision,
            step_cost=self.step_cost,
            scheduler_config=scheduler,
            slo=slo,
            include_lm_head=include_lm_head,
            fused=fused,
        )
        return simulator.run(workload)

    def predict_fleet(
        self,
        model: "TransformerConfig | str",
        fleet: FleetConfig,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        fused: bool = True,
    ) -> FleetReport:
        """Simulate a fleet of engine replicas of ``model`` behind a router.

        Every replica shares this engine's :attr:`step_cost` layer, so the
        whole fleet (and every scenario of a fleet sweep) prices steps
        through one cache.  See
        :class:`~repro.serving.fleet.FleetSimulator` for the routing paths
        and :class:`~repro.serving.fleet.FleetReport` for the aggregate.
        """
        model = get_model(model) if isinstance(model, str) else model
        precision = Precision.parse(precision)
        simulator = FleetSimulator(
            system=self.system,
            model=model,
            fleet=fleet,
            tensor_parallel=tensor_parallel,
            precision=precision,
            step_cost=self.step_cost,
            fused=fused,
        )
        return simulator.run()

    # -- bottleneck views ----------------------------------------------------------------

    def prefill_bottlenecks(
        self,
        model: "TransformerConfig | str",
        batch_size: int = 1,
        prompt_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
    ) -> List[GemmBottleneckEntry]:
        """Per-GEMM bound-type table for the prefill phase (paper Table 4)."""
        model = get_model(model) if isinstance(model, str) else model
        return prefill_gemm_table(
            model,
            accelerator=self.system.accelerator,
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            tensor_parallel=tensor_parallel,
            precision=precision,
            gemm_model=self.kernel_model.gemm_model,
        )

    def decode_bottlenecks(
        self,
        model: "TransformerConfig | str",
        batch_size: int = 1,
        kv_len: int = 200,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
    ) -> List[GemmBottleneckEntry]:
        """Per-GEMM bound-type table for one decode step."""
        model = get_model(model) if isinstance(model, str) else model
        return decode_gemm_table(
            model,
            accelerator=self.system.accelerator,
            batch_size=batch_size,
            kv_len=kv_len,
            tensor_parallel=tensor_parallel,
            precision=precision,
            gemm_model=self.kernel_model.gemm_model,
        )
