"""The HTTP API of the study service, as a transport-free dispatch table.

:meth:`ServiceApi.dispatch` maps ``(method, path, body, query)`` to a
:class:`Response` -- plain data plus an optional byte-chunk stream -- without
touching sockets, so the complete API surface is testable in-process against
the fakes and the HTTP layer (:mod:`repro.service.http`) is a thin adapter.

Routes::

    GET    /                     service info (version, uptime, endpoints)
    GET    /healthz              liveness probe
    GET    /stats                job counts + shared-runner cache counters
    POST   /studies              submit a study (spec or registered name) -> 202
    GET    /studies              alias of /registry/studies
    GET    /jobs                 every job's status, in submission order
    GET    /jobs/<id>            one job's status
    GET    /jobs/<id>/events     NDJSON stream: one line per completed scenario
    GET    /jobs/<id>/rows       poll completed rows (?offset=N&wait=seconds)
    GET    /jobs/<id>/table.csv  finished table as CSV (409 until done)
    GET    /jobs/<id>/table.json finished table as columnar JSON
    POST   /jobs/<id>/cancel     cancel a queued/running job
    DELETE /jobs/<id>            same as cancel
    GET    /registry/{studies,models,systems,extractors,derives}

Errors are structured JSON: ``{"error": {"type": ..., "message": ...}}`` with
400 for malformed requests, 404 for unknown jobs/routes, 405 for wrong
methods, 409 for invalid lifecycle transitions, and 422 for submissions the
spec validation rejects (unknown study/extractor/model/system names, missing
required parameters).
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Dict, Iterator, Mapping, Optional

import numpy as np

from .. import __version__
from ..errors import ReproError
from .jobs import Job, JobState
from .service import InvalidTransition, StudyService

#: Longest long-poll wait the rows endpoint grants, seconds.
MAX_POLL_WAIT = 30.0

#: Condition-wait granularity of the NDJSON stream, seconds.  Purely an
#: upper bound on shutdown latency -- new rows wake the stream immediately.
_STREAM_TICK = 0.25


def _json_default(value: object) -> object:
    """JSON fallbacks: NumPy scalars/arrays, enums, then ``str``."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, enum.Enum):
        return value.value
    return str(value)


def _dumps(payload: object) -> bytes:
    return json.dumps(payload, default=_json_default).encode("utf-8")


@dataclasses.dataclass
class Response:
    """One API response: status, body bytes, and an optional byte stream."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    stream: Optional[Iterator[bytes]] = None

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "Response":
        return cls(status=status, body=_dumps(payload) + b"\n")

    @classmethod
    def text(cls, text: str, status: int = 200, content_type: str = "text/plain") -> "Response":
        return cls(status=status, body=text.encode("utf-8"), content_type=content_type)

    @classmethod
    def error(cls, status: int, message: str, error_type: str = "Error") -> "Response":
        return cls.json({"error": {"type": error_type, "message": message}}, status=status)

    def json_body(self) -> object:
        """Decode the body as JSON (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


class ServiceApi:
    """Route dispatcher over one :class:`~repro.service.service.StudyService`."""

    def __init__(self, service: StudyService) -> None:
        self.service = service

    def dispatch(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        query: Optional[Mapping[str, str]] = None,
    ) -> Response:
        """Resolve one request to a :class:`Response` (never raises for
        client errors; unexpected exceptions are the transport's 500)."""
        method = method.upper()
        query = query or {}
        parts = [part for part in path.split("/") if part]
        if not parts:
            return self._require(method, "GET") or self._info()
        if parts == ["healthz"]:
            return self._require(method, "GET") or Response.json({"status": "ok"})
        if parts == ["stats"]:
            return self._require(method, "GET") or Response.json(self.service.stats())
        if parts == ["studies"]:
            if method == "POST":
                return self._submit(body)
            return self._require(method, "GET") or self._registry("studies")
        if parts[0] == "registry" and len(parts) == 2:
            return self._require(method, "GET") or self._registry(parts[1])
        if parts[0] == "jobs":
            return self._jobs_route(method, parts, query)
        return Response.error(404, f"no route for {path!r}", "NotFound")

    @staticmethod
    def _require(method: str, expected: str) -> Optional[Response]:
        if method != expected:
            return Response.error(405, f"method {method} not allowed (use {expected})", "MethodNotAllowed")
        return None

    # -- routes ------------------------------------------------------------------------

    def _info(self) -> Response:
        stats = self.service.stats()
        return Response.json(
            {
                "service": "repro-serve",
                "version": __version__,
                "uptime_s": stats["uptime_s"],
                "workers": stats["workers"],
                "jobs": stats["jobs"],
                "endpoints": [
                    "POST /studies",
                    "GET /jobs",
                    "GET /jobs/<id>",
                    "GET /jobs/<id>/events",
                    "GET /jobs/<id>/rows",
                    "GET /jobs/<id>/table.csv",
                    "GET /jobs/<id>/table.json",
                    "POST /jobs/<id>/cancel",
                    "GET /registry/studies",
                    "GET /registry/models",
                    "GET /registry/systems",
                    "GET /registry/extractors",
                    "GET /registry/derives",
                    "GET /stats",
                    "GET /healthz",
                ],
            }
        )

    def _registry(self, which: str) -> Response:
        catalogs = self.service.registry.catalogs
        listings = {
            "studies": catalogs.studies,
            "models": catalogs.models,
            "systems": catalogs.systems,
            "extractors": catalogs.extractors,
            "derives": catalogs.derives,
        }
        if which not in listings:
            return Response.error(
                404, f"unknown registry {which!r}; one of {sorted(listings)}", "NotFound"
            )
        return Response.json({which: listings[which]()})

    def _submit(self, body: Optional[bytes]) -> Response:
        if not body:
            return Response.error(400, "empty submission body (expected a JSON document)", "BadRequest")
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return Response.error(400, f"submission body is not valid JSON: {error}", "BadRequest")
        if not isinstance(document, dict):
            return Response.error(400, "the submission body must be a JSON object", "BadRequest")
        try:
            job = self.service.submit(document)
        except ReproError as error:
            # The structured 422: spec validation names the unknown
            # study/extractor/derive/model/system or missing parameter.
            return Response.error(422, str(error), type(error).__name__)
        return Response.json({"job": job.status()}, status=202)

    def _jobs_route(self, method: str, parts: list, query: Mapping[str, str]) -> Response:
        if len(parts) == 1:
            return self._require(method, "GET") or Response.json(
                {"jobs": [job.status() for job in self.service.jobs.list()]}
            )
        try:
            job = self.service.job(parts[1])
        except KeyError:
            return Response.error(404, f"unknown job {parts[1]!r}", "NotFound")
        if len(parts) == 2:
            if method == "DELETE":
                return self._cancel(job)
            return self._require(method, "GET") or Response.json({"job": job.status()})
        if len(parts) != 3:
            return Response.error(404, f"no route for {'/'.join(parts)!r}", "NotFound")
        action = parts[2]
        if action == "cancel":
            return self._require(method, "POST") or self._cancel(job)
        checked = self._require(method, "GET")
        if checked is not None:
            return checked
        if action == "events":
            return Response(status=200, content_type="application/x-ndjson", stream=self._events(job))
        if action == "rows":
            return self._rows(job, query)
        if action == "table.csv":
            return self._table(job, "csv")
        if action == "table.json":
            return self._table(job, "json")
        return Response.error(404, f"unknown job action {action!r}", "NotFound")

    def _cancel(self, job: Job) -> Response:
        try:
            job = self.service.cancel(job.id)
        except InvalidTransition as error:
            return Response.error(409, str(error), "InvalidTransition")
        return Response.json({"job": job.status()})

    def _events(self, job: Job) -> Iterator[bytes]:
        """NDJSON: every row event, then one ``end`` line when the job settles."""
        store = self.service.jobs
        offset = 0
        while True:
            rows, terminal = store.wait_rows(job, offset, timeout=_STREAM_TICK)
            for row in rows:
                yield _dumps(row) + b"\n"
            offset += len(rows)
            if terminal and not rows:
                yield _dumps(
                    {
                        "event": "end",
                        "state": job.state.value,
                        "completed_rows": offset,
                        "error": job.error,
                    }
                ) + b"\n"
                return

    def _rows(self, job: Job, query: Mapping[str, str]) -> Response:
        try:
            offset = int(query.get("offset", 0))
            wait = min(float(query.get("wait", 0.0)), MAX_POLL_WAIT)
        except ValueError as error:
            return Response.error(400, f"bad offset/wait parameter: {error}", "BadRequest")
        if offset < 0:
            return Response.error(400, "offset must be non-negative", "BadRequest")
        rows, terminal = self.service.jobs.wait_rows(job, offset, timeout=max(wait, 0.0))
        return Response.json(
            {
                "state": job.state.value,
                "offset": offset,
                "next_offset": offset + len(rows),
                "done": terminal,
                "total_scenarios": job.total_scenarios,
                "rows": rows,
            }
        )

    def _table(self, job: Job, fmt: str) -> Response:
        if job.state is not JobState.DONE or job.table is None:
            return Response.error(
                409,
                f"job {job.id} is {job.state.value}; the table exists once it is done",
                "TableNotReady",
            )
        if fmt == "csv":
            return Response.text(job.table.to_csv(), content_type="text/csv")
        return Response(status=200, body=job.table.to_json().encode("utf-8") + b"\n")
