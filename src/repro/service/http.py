"""The socket transport: stdlib ``ThreadingHTTPServer`` over the dispatch API.

Deliberately thin -- every route, status code, and body lives in
:class:`~repro.service.api.ServiceApi`; this module only reads requests off
sockets and writes :class:`~repro.service.api.Response` objects back.
Streaming responses (the NDJSON event feed) are sent close-delimited
(``Connection: close``) so no chunked-encoding machinery is needed and plain
``curl``/``urllib`` consume them naturally.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, urlsplit

from .api import Response, ServiceApi


class _ApiHandler(BaseHTTPRequestHandler):
    """Per-connection handler; the server class carries the shared ``api``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def do_GET(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        split = urlsplit(self.path)
        query = {key: values[-1] for key, values in parse_qs(split.query).items()}
        body = b""
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            body = self.rfile.read(length)
        try:
            response = self.server.api.dispatch(method, split.path, body=body, query=query)
        except Exception as error:  # noqa: BLE001 -- one bad request must not kill the thread
            response = Response.error(500, f"{type(error).__name__}: {error}", "InternalError")
        self._write(response)

    def _write(self, response: Response) -> None:
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            if response.stream is None:
                self.send_header("Content-Length", str(len(response.body)))
                self.end_headers()
                if response.body:
                    self.wfile.write(response.body)
                return
            # Close-delimited stream: the client reads until EOF.
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away mid-stream

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging is the caller's concern, not stderr noise


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServiceApi`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], api: ServiceApi) -> None:
        super().__init__(address, _ApiHandler)
        self.api = api


def make_server(api: ServiceApi, host: str = "127.0.0.1", port: int = 8642) -> ServiceHTTPServer:
    """Bind (without serving) a server for this API; ``port=0`` picks a free one."""
    return ServiceHTTPServer((host, port), api)
