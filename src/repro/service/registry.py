"""The service registry: constructor-injected backends of the study service.

Everything the service touches -- the shared sweep runner, the job store, the
clock, the name catalogs (studies/models/systems/extractors) -- arrives
through one :class:`ServiceRegistry`, so every backend can be swapped for an
in-memory fake (:mod:`repro.service.fakes`) and the full HTTP API is testable
without sockets, real studies, or wall-clock time.  Production wiring goes
through :func:`build_registry`, which is what the ``repro serve`` CLI verb
calls.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

from ..sweep.runner import SweepRunner
from .jobs import InMemoryJobStore

#: The injected time source: a zero-argument callable returning seconds.
Clock = Callable[[], float]


@dataclasses.dataclass
class Catalogs:
    """Name-listing backends behind the ``GET /registry/...`` endpoints.

    Attributes:
        studies: Registered studies as ``{"name", "artifact", "description"}``
            records.
        models / systems / extractors / derives: Plain name lists.
        get_study: ``(name, **params) -> Study`` resolver used by registered-
            name submissions; must raise a
            :class:`~repro.errors.ReproError` for unknown names.
    """

    studies: Callable[[], List[Dict[str, str]]]
    models: Callable[[], List[str]]
    systems: Callable[[], List[str]]
    extractors: Callable[[], List[str]]
    derives: Callable[[], List[str]]
    get_study: Callable[..., object]


def default_catalogs() -> Catalogs:
    """Catalogs wired to the real registries (zoo, hardware catalog, studies)."""
    from ..hardware.catalog import list_systems
    from ..models.zoo import list_models
    from ..studies.extractors import list_derives, list_extractors
    from ..studies.registry import get_study, list_studies

    def studies() -> List[Dict[str, str]]:
        return [
            {"name": entry.name, "artifact": entry.artifact, "description": entry.description}
            for entry in list_studies()
        ]

    return Catalogs(
        studies=studies,
        models=list_models,
        systems=list_systems,
        extractors=list_extractors,
        derives=list_derives,
        get_study=get_study,
    )


@dataclasses.dataclass
class ServiceRegistry:
    """Every backend of one :class:`~repro.service.service.StudyService`.

    Attributes:
        runner: The ONE warm :class:`~repro.sweep.runner.SweepRunner` all
            jobs share -- its LRU, disk store, and the process-global engine
            /step-cost caches are what make a resubmission price nothing.
            May be ``None`` when a fake ``executor`` replaces evaluation
            entirely.
        jobs: The job store (``InMemoryJobStore`` in-process; swap for a
            fake or a persistent store).
        clock: Time source for every timestamp the service records.
        catalogs: Name registries behind ``GET /registry/...`` and
            registered-name submissions.
        executor: Optional study-execution backend; ``None`` builds the
            default runner-backed executor.  Fakes inject scripted ones.
        workers: Worker threads draining the job queue.
    """

    runner: Optional[SweepRunner] = None
    jobs: InMemoryJobStore = dataclasses.field(default_factory=InMemoryJobStore)
    clock: Clock = time.time
    catalogs: Catalogs = dataclasses.field(default_factory=default_catalogs)
    executor: Optional[object] = None
    workers: int = 2


def build_registry(
    workers: int = 2,
    disk_cache: "str | bool | None" = True,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    cache_size: int = 65536,
) -> ServiceRegistry:
    """Production wiring: a shared warm runner plus in-memory job store.

    Args:
        workers: Service worker threads (concurrent studies in flight).
        disk_cache: Passed through to :class:`SweepRunner` -- ``True`` opens
            the default persistent store, a path roots it there, ``False``
            disables it.
        executor: The *sweep* executor each job evaluates through (its
            scenarios; not to be confused with service worker threads).
        max_workers: Pool size for pooled sweep executors.
        cache_size: Runner LRU entries; sized generously because the LRU is
            the cross-request warm state the service exists to keep.
    """
    runner = SweepRunner(
        executor=executor,
        max_workers=max_workers,
        cache_size=cache_size,
        disk_cache=disk_cache,
    )
    return ServiceRegistry(runner=runner, workers=workers)
