"""The resident study service: a job queue over one shared warm runner.

:class:`StudyService` accepts study submissions (JSON specs or registered
names), queues them, and executes them on a bounded pool of worker threads --
every job through the ONE :class:`~repro.sweep.runner.SweepRunner` the
registry injected, so the warm state every prior performance PR built
(step-cost tables, interned fabric/collective models, the in-memory LRU, the
persistent disk store) is shared *across requests* instead of dying with a
CLI invocation.  Per-scenario results stream into the job store through the
runner's existing ``on_result`` hook; cancellation rides the same hook (the
interrupt machinery the CLI's Ctrl-C path uses), so a cancelled job keeps
every completed row and the disk store keeps every priced scenario.

The service is transport-agnostic: :class:`~repro.service.api.ServiceApi`
maps it onto HTTP routes, and the tests drive those routes directly against
in-memory fakes (see :mod:`repro.service.fakes`).
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
from typing import Callable, Dict, List, Mapping, Optional

from ..errors import ConfigurationError, ReproError
from ..studies.extractors import get_extractor
from ..studies.study import Study
from ..sweep.runner import SweepResult
from ..sweep.table import SweepTable
from .jobs import Job, JobState
from .registry import ServiceRegistry


class JobCancelled(Exception):
    """Raised inside the ``on_result`` hook to interrupt a running sweep."""


class InvalidTransition(ReproError):
    """A lifecycle request that the job's current state does not allow."""


class RunnerStudyExecutor:
    """The production execution backend: studies run through the shared runner."""

    def __init__(self, runner) -> None:
        self.runner = runner

    def total_scenarios(self, study: Study) -> int:
        """Grid size of one study (known before anything is priced)."""
        return sum(1 for _ in study.combos())

    def execute(self, study: Study, on_result: Callable[[SweepResult], None]) -> SweepTable:
        """Run ``study`` on the shared runner, streaming per-scenario results."""
        return study.run(runner=self.runner, on_result=on_result)


class StudyService:
    """Submission, queueing, execution, and lifecycle of study jobs.

    Args:
        registry: The injected backends (runner, job store, clock, catalogs,
            optional execution backend, worker count).
        start_workers: Start the worker threads immediately.  Tests pass
            ``False`` and drain the queue synchronously with
            :meth:`run_next` for deterministic, sleep-free assertions.
    """

    def __init__(self, registry: ServiceRegistry, start_workers: bool = True) -> None:
        self.registry = registry
        self.jobs = registry.jobs
        self.clock = registry.clock
        self.executor = registry.executor or RunnerStudyExecutor(registry.runner)
        self.started_at = self.clock()
        self._queue: "queue_module.SimpleQueue[Optional[str]]" = queue_module.SimpleQueue()
        self._studies: Dict[str, Study] = {}
        self._studies_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._closed = False
        if start_workers:
            self.start()

    # -- worker pool -------------------------------------------------------------------

    def start(self) -> None:
        """Start the registry's worker threads (idempotent)."""
        while len(self._threads) < max(0, self.registry.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{len(self._threads)}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work and join the worker threads."""
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue  # cancelled (or withdrawn) while queued
            self._execute(job)

    def run_next(self) -> Optional[Job]:
        """Synchronously execute the next queued job (tests / workerless mode)."""
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue_module.Empty:
                return None
            if job_id is None:
                continue
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue
            self._execute(job)
            return job

    # -- submission --------------------------------------------------------------------

    def submit(self, document: Mapping[str, object]) -> Job:
        """Validate one submission document and queue its job.

        Two forms are accepted::

            {"name": ..., "kind": ..., "axes": ...}      # a Study JSON spec
            {"study": {...spec...}}                       # the wrapped form
            {"study": "registered_name", "params": {...}} # a registered study

        Raises :class:`~repro.errors.ReproError` subclasses for anything
        invalid -- unknown study/extractor/derive/model/system names, missing
        required parameters, malformed spec fields -- which the API layer
        returns as a structured 422 body.
        """
        if self._closed:
            raise InvalidTransition("the service is shutting down")
        if not isinstance(document, Mapping):
            raise ConfigurationError("the submission body must be a JSON object")
        study = self._parse_submission(document)
        total = self.executor.total_scenarios(study)
        try:
            spec_echo: Optional[Dict[str, object]] = study.to_dict()
        except ConfigurationError:
            spec_echo = None  # code-only registered study: runnable, not serializable
        job = self.jobs.create(
            study_name=study.name, spec=spec_echo, total_scenarios=total, at=self.clock()
        )
        with self._studies_lock:
            self._studies[job.id] = study
        self._queue.put(job.id)
        return job

    def _parse_submission(self, document: Mapping[str, object]) -> Study:
        named = document.get("study")
        if isinstance(named, str):
            params = document.get("params", {})
            if not isinstance(params, Mapping):
                raise ConfigurationError('"params" must be an object of builder keywords')
            unknown = set(document) - {"study", "params"}
            if unknown:
                raise ConfigurationError(
                    f"unknown submission fields {sorted(unknown)} alongside a registered study name"
                )
            try:
                study = self.registry.catalogs.get_study(named, **params)
            except TypeError as error:
                # A mistyped params key reaches the builder as an unexpected keyword.
                raise ConfigurationError(f"bad params for study {named!r}: {error}") from None
            if not isinstance(study, Study):
                raise ConfigurationError(f"study builder {named!r} did not return a Study")
            return study
        if "params" in document:
            raise ConfigurationError('"params" applies to registered study names, not inline specs')
        return Study.from_dict(document)

    # -- execution ---------------------------------------------------------------------

    def _execute(self, job: Job) -> None:
        with self._studies_lock:
            study = self._studies.get(job.id)
        if job.cancel_requested or study is None:
            self.jobs.mark_cancelled(job, at=self.clock())
            return
        self.jobs.mark_running(job, at=self.clock())
        extract = _metric_extractor(study)
        counter = itertools.count()

        def on_result(result: SweepResult) -> None:
            if job.cancel_requested:
                raise JobCancelled()
            row = self._row_event(next(counter), result, extract)
            self.jobs.append_row(job, row, cached=result.from_cache, errored=result.error is not None)

        try:
            table = self.executor.execute(study, on_result)
        except JobCancelled:
            self.jobs.mark_cancelled(job, at=self.clock())
        except ReproError as error:
            self.jobs.fail(job, str(error), at=self.clock())
        except Exception as error:  # noqa: BLE001 -- a worker thread must survive any job
            self.jobs.fail(job, f"{type(error).__name__}: {error}", at=self.clock())
        else:
            self.jobs.finish(job, table, at=self.clock())
        finally:
            with self._studies_lock:
                self._studies.pop(job.id, None)

    def _row_event(
        self,
        index: int,
        result: SweepResult,
        extract: Optional[Callable[[SweepResult], object]],
    ) -> Dict[str, object]:
        """One JSON-safe NDJSON line per completed scenario."""
        event: Dict[str, object] = {
            "event": "row",
            "index": index,
            "t": self.clock(),
            "source": "cached" if result.from_cache else ("error" if result.error else "priced"),
            "scenario": result.scenario.describe(),
        }
        if result.error is not None:
            event["error"] = result.error
        elif extract is not None:
            # Best-effort per-scenario metrics: extractors are defined on
            # single results, so most can run incrementally; ones that cannot
            # (or that need the whole table) simply leave metrics off the
            # stream -- the finished table always carries them.
            try:
                event["metrics"] = extract(result)
            except Exception:
                pass
        return event

    # -- lifecycle / introspection -----------------------------------------------------

    def job(self, job_id: str) -> Job:
        """The job with this id; raises ``KeyError`` (the API's 404) otherwise."""
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job.

        Queued jobs cancel immediately; running ones at their next completed
        scenario (the ``on_result`` hook raises, the sweep unwinds, and every
        already-priced scenario stays in the shared caches).  Raises
        :class:`InvalidTransition` for terminal jobs.
        """
        job = self.job(job_id)
        if not self.jobs.request_cancel(job, at=self.clock()):
            raise InvalidTransition(f"job {job_id} is already {job.state.value}")
        return job

    def stats(self) -> Dict[str, object]:
        """Service-level counters (the ``GET /stats`` body)."""
        runner = self.registry.runner
        return {
            "uptime_s": self.clock() - self.started_at,
            "workers": len(self._threads),
            "jobs": self.jobs.counts(),
            "runner": runner.stats.snapshot() if runner is not None else None,
        }


def _metric_extractor(study: Study) -> Optional[Callable[[SweepResult], object]]:
    """The study's raw extractor, for best-effort per-row metric streaming."""
    if study.extract is None:
        return None
    if callable(study.extract):
        return study.extract
    try:
        return get_extractor(study.extract)
    except ConfigurationError:
        return None
