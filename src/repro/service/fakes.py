"""In-memory fakes for every constructor-injected service backend.

The testing pattern of this subsystem: the API tests build a
:class:`~repro.service.registry.ServiceRegistry` out of these fakes, drive the
full HTTP route table through :meth:`ServiceApi.dispatch`, and assert on the
exact JSON the real transport would send -- no sockets, no real studies, no
wall-clock sleeps.  :class:`~repro.service.jobs.InMemoryJobStore` is already
its own fake; the pieces here replace the remaining backends:

- :class:`FakeClock` -- deterministic timestamps, advanced explicitly.
- :class:`FakeCatalogs` -- canned registry listings plus a builder dict for
  registered-name submissions.
- :class:`FakeStudyExecutor` -- a scripted execution backend that emits
  ``SweepResult`` rows through the same ``on_result`` hook the shared runner
  would, with optional step gating (a semaphore acquired before each row, so
  cancellation tests can freeze a job mid-stream) and scripted failure.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..studies.study import Study
from ..sweep.runner import SweepResult
from ..sweep.scenario import Scenario
from ..sweep.table import SweepTable
from .registry import Catalogs


class FakeClock:
    """A clock that only moves when told to."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


def fake_catalogs(builders: Optional[Dict[str, Callable[..., Study]]] = None) -> Catalogs:
    """Catalogs with canned listings and an explicit builder table."""
    builders = dict(builders or {})

    def get_study(name: str, **params: object) -> Study:
        if name not in builders:
            raise ConfigurationError(
                f"unknown study {name!r}; registered: {sorted(builders)}"
            )
        return builders[name](**params)

    return Catalogs(
        studies=lambda: [
            {"name": name, "artifact": "fake", "description": "a fake study"}
            for name in sorted(builders)
        ],
        models=lambda: ["fake-model-7b"],
        systems=lambda: ["fake-dgx"],
        extractors=lambda: ["fake_extractor"],
        derives=lambda: ["fake_derive"],
        get_study=get_study,
    )


class FakeStudyExecutor:
    """A scripted execution backend: rows on demand, no pricing.

    Args:
        rows_for: ``study -> row count``; defaults to the study's grid size.
        step: Optional semaphore acquired before *each* emitted row.  With an
            initial value of 0 the job freezes until the test releases steps,
            which is how cancel-while-running is pinned deterministically.
        fail_with: Raise this exception after emitting ``fail_after`` rows.
        cached: Mark emitted results as cache hits (warm-resubmission tests).
    """

    def __init__(
        self,
        rows_for: Optional[Callable[[Study], int]] = None,
        step: Optional[threading.Semaphore] = None,
        fail_with: Optional[Exception] = None,
        fail_after: int = 0,
        cached: bool = False,
    ) -> None:
        self.rows_for = rows_for
        self.step = step
        self.fail_with = fail_with
        self.fail_after = fail_after
        self.cached = cached
        self.executed: List[str] = []

    def total_scenarios(self, study: Study) -> int:
        if self.rows_for is not None:
            return self.rows_for(study)
        return sum(1 for _ in study.combos())

    def execute(self, study: Study, on_result: Callable[[SweepResult], None]) -> SweepTable:
        self.executed.append(study.name)
        total = self.total_scenarios(study)
        columns: Dict[str, List[object]] = {"index": [], "value": []}
        for index in range(total):
            if self.step is not None:
                self.step.acquire()
            if self.fail_with is not None and index >= self.fail_after:
                raise self.fail_with
            scenario = Scenario.gemv_validation(tag=f"fake-{study.name}-{index}")
            on_result(
                SweepResult(scenario=scenario, value={"index": index}, from_cache=self.cached)
            )
            columns["index"].append(index)
            columns["value"].append(float(index))
        return SweepTable(columns=columns)
