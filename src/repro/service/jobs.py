"""Job lifecycle primitives of the study service.

A :class:`Job` is one submitted study: it moves ``queued -> running ->
done|failed|cancelled`` and accumulates one row event per completed scenario
(streamed to it through the sweep runner's ``on_result`` hook).  The
:class:`InMemoryJobStore` is the canonical store -- a thread-safe dict guarded
by one condition variable, which is also what makes it the natural *fake* for
API tests: readers (the NDJSON stream, the poll endpoint) block on the same
condition the executing worker notifies, so the full submit/stream/finish
protocol runs without sockets or sleeps.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from typing import Dict, List, Optional, Tuple

from ..sweep.table import SweepTable


class JobState(enum.Enum):
    """Lifecycle of one submitted study."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job will never change state again."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclasses.dataclass
class Job:
    """One submitted study and everything it has produced so far.

    Attributes:
        id: Store-assigned identifier (``"job-1"``, ``"job-2"``, ...).
        study_name: The study's name (registered name or the spec's ``name``).
        spec: JSON-safe echo of the submitted spec, when the study is
            serializable (code-only registered studies store ``None``).
        total_scenarios: Grid size, known at submission time.
        state: Current :class:`JobState`.
        submitted_at/started_at/finished_at: Clock timestamps (the store's
            callers stamp them from the injected service clock).
        rows: One JSON-safe event per completed scenario, in completion
            order; the streaming and poll endpoints read slices of this list.
        cached_rows: Rows served from the shared warm caches (LRU/disk)
            rather than priced fresh -- the per-job cache-hit accounting.
        error_rows: Rows whose scenario evaluation captured a library error.
        error: The failure message of a ``failed`` job.
        table: The finished :class:`~repro.sweep.table.SweepTable` of a
            ``done`` job (source of the ``table.csv`` / ``table.json``
            exports).
        cancel_requested: Set when a cancel arrived while the job was
            running; the executing worker observes it at the next row event.
    """

    id: str
    study_name: str
    spec: Optional[Dict[str, object]]
    total_scenarios: int
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    rows: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    cached_rows: int = 0
    error_rows: int = 0
    error: Optional[str] = None
    table: Optional[SweepTable] = None
    cancel_requested: bool = False

    def status(self) -> Dict[str, object]:
        """JSON-safe status document (the ``GET /jobs/<id>`` body)."""
        return {
            "id": self.id,
            "study": self.study_name,
            "state": self.state.value,
            "total_scenarios": self.total_scenarios,
            "completed_rows": len(self.rows),
            "cached_rows": self.cached_rows,
            "error_rows": self.error_rows,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "links": {
                "self": f"/jobs/{self.id}",
                "events": f"/jobs/{self.id}/events",
                "rows": f"/jobs/{self.id}/rows",
                "table_csv": f"/jobs/{self.id}/table.csv",
                "table_json": f"/jobs/{self.id}/table.json",
                "cancel": f"/jobs/{self.id}/cancel",
            },
        }


class InMemoryJobStore:
    """Thread-safe in-memory job store (and the fake used by the API tests).

    All mutation goes through the store so every reader -- worker threads,
    the streaming generator, the poll endpoint, status queries -- observes
    consistent jobs, and every change notifies one shared condition variable
    that :meth:`wait_rows` blocks on.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 1

    # -- creation / lookup -------------------------------------------------------------

    def create(
        self,
        study_name: str,
        spec: Optional[Dict[str, object]],
        total_scenarios: int,
        at: float,
    ) -> Job:
        """Register a new queued job and return it."""
        with self._cond:
            job = Job(
                id=f"job-{self._next_id}",
                study_name=study_name,
                spec=spec,
                total_scenarios=total_scenarios,
                submitted_at=at,
            )
            self._next_id += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._cond.notify_all()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        """Every job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for the service stats endpoint)."""
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            return counts

    # -- state transitions -------------------------------------------------------------

    def mark_running(self, job: Job, at: float) -> None:
        with self._cond:
            job.state = JobState.RUNNING
            job.started_at = at
            self._cond.notify_all()

    def append_row(self, job: Job, row: Dict[str, object], cached: bool, errored: bool) -> None:
        """Record one completed-scenario event and wake every waiting reader."""
        with self._cond:
            job.rows.append(row)
            if cached:
                job.cached_rows += 1
            if errored:
                job.error_rows += 1
            self._cond.notify_all()

    def finish(self, job: Job, table: SweepTable, at: float) -> None:
        with self._cond:
            job.table = table
            job.state = JobState.DONE
            job.finished_at = at
            self._cond.notify_all()

    def fail(self, job: Job, error: str, at: float) -> None:
        with self._cond:
            job.error = error
            job.state = JobState.FAILED
            job.finished_at = at
            self._cond.notify_all()

    def mark_cancelled(self, job: Job, at: float) -> None:
        with self._cond:
            job.state = JobState.CANCELLED
            job.finished_at = at
            self._cond.notify_all()

    def request_cancel(self, job: Job, at: float) -> bool:
        """Cancel a job; returns whether the request changed anything.

        A queued job cancels immediately (the worker skips it when it pops
        the queue); a running one gets :attr:`Job.cancel_requested` set and
        cancels at its next row event.  Terminal jobs return ``False``.
        """
        with self._cond:
            if job.state is JobState.QUEUED:
                job.cancel_requested = True
                job.state = JobState.CANCELLED
                job.finished_at = at
                self._cond.notify_all()
                return True
            if job.state is JobState.RUNNING:
                job.cancel_requested = True
                self._cond.notify_all()
                return True
            return False

    # -- readers -----------------------------------------------------------------------

    def wait_rows(
        self, job: Job, offset: int, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, object]], bool]:
        """Rows past ``offset``, blocking up to ``timeout`` for new ones.

        Returns ``(new_rows, terminal)``.  When ``new_rows`` is empty and
        ``terminal`` is True the stream is complete; an empty list with
        ``terminal`` False means the timeout elapsed first (callers loop).
        """
        with self._cond:
            if timeout is not None:
                self._cond.wait_for(
                    lambda: len(job.rows) > offset or job.state.terminal, timeout=timeout
                )
            else:
                self._cond.wait_for(lambda: len(job.rows) > offset or job.state.terminal)
            return list(job.rows[offset:]), job.state.terminal
