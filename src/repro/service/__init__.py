"""``repro serve`` -- the resident study service.

One shared warm :class:`~repro.sweep.runner.SweepRunner` behind an HTTP API:
submit Study JSON specs, stream per-scenario results as NDJSON, fetch the
finished table as CSV/JSON, cancel jobs, introspect the registries.  See
``src/repro/service/README.md`` for the architecture and the fakes-based
testing pattern.
"""

from .api import Response, ServiceApi
from .fakes import FakeClock, FakeStudyExecutor, fake_catalogs
from .http import ServiceHTTPServer, make_server
from .jobs import InMemoryJobStore, Job, JobState
from .registry import Catalogs, ServiceRegistry, build_registry, default_catalogs
from .service import InvalidTransition, JobCancelled, RunnerStudyExecutor, StudyService

__all__ = [
    "Catalogs",
    "FakeClock",
    "FakeStudyExecutor",
    "InMemoryJobStore",
    "InvalidTransition",
    "Job",
    "JobCancelled",
    "JobState",
    "Response",
    "RunnerStudyExecutor",
    "ServiceApi",
    "ServiceHTTPServer",
    "ServiceRegistry",
    "StudyService",
    "build_registry",
    "default_catalogs",
    "fake_catalogs",
    "make_server",
]
