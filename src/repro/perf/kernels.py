"""Execution-time model for the non-GEMM kernels of a transformer layer.

Normalization (softmax, layer-norm), element-wise kernels (GELU, dropout,
bias/residual additions), and pure data-movement operations (KV-cache reads
and writes) have low arithmetic intensity: their time is essentially the time
to stream their operands through DRAM, with a small vector-compute floor.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from ..hardware.accelerator import AcceleratorSpec
from ..units import MICROSECOND
from ..caching import Memo
from ..workload.operators import GEMM, Operator, OperatorKind
from .gemm import GemmTimeModel
from .roofline import RooflinePoint, classify

#: Default DRAM bandwidth utilization of streaming (element-wise) kernels.
DEFAULT_STREAMING_DRAM_UTILIZATION = 0.80
#: Default per-kernel software/launch overhead for the small kernels.
DEFAULT_KERNEL_OVERHEAD = 2.0 * MICROSECOND


@dataclasses.dataclass(frozen=True)
class MemoryBoundKernelModel:
    """Times normalization / element-wise / memory kernels on one accelerator.

    Attributes:
        accelerator: The device the kernels run on.
        dram_utilization: Achievable fraction of the DRAM bandwidth for
            streaming access patterns.
        kernel_overhead: Fixed software overhead added to every kernel.
    """

    accelerator: AcceleratorSpec
    dram_utilization: float = DEFAULT_STREAMING_DRAM_UTILIZATION
    kernel_overhead: float = DEFAULT_KERNEL_OVERHEAD

    def __post_init__(self) -> None:
        if not 0 < self.dram_utilization <= 1:
            raise ConfigurationError("dram_utilization must be in (0, 1]")
        if self.kernel_overhead < 0:
            raise ConfigurationError("kernel_overhead must be non-negative")
        # Memoization of repeated kernel queries (see GemmTimeModel); keyed by
        # the frozen operator descriptor, attached outside the dataclass fields.
        object.__setattr__(self, "_evaluation_cache", Memo())

    def evaluate(self, op: Operator) -> RooflinePoint:
        """Time and classify one memory-bound kernel."""
        cached = self._evaluation_cache.get(op)
        if cached is not None:
            return cached
        dram = self.accelerator.memory.dram
        bandwidth = dram.bandwidth * self.dram_utilization
        memory_time = op.bytes_total / bandwidth if op.bytes_total > 0 else 0.0
        compute_time = op.flops / self.accelerator.compute.vector_throughput if op.flops > 0 else 0.0
        point = classify(
            name=op.name,
            flops=op.flops,
            compute_time=compute_time,
            level_times={dram.name: memory_time},
            level_bytes={dram.name: op.bytes_total},
            outermost_level=dram.name,
        )
        return self._evaluation_cache.put(op, point)

    def time(self, op: Operator, include_overhead: bool = True) -> float:
        """Execution time of one kernel in seconds."""
        point = self.evaluate(op)
        overhead = self.kernel_overhead if include_overhead else 0.0
        return point.time + overhead


@dataclasses.dataclass(frozen=True)
class DeviceKernelModel:
    """Dispatcher that times any compute operator on one accelerator.

    GEMMs go through the hierarchical-roofline GEMM model; everything else is
    treated as a streaming memory-bound kernel.
    """

    accelerator: AcceleratorSpec
    gemm_model: GemmTimeModel = None  # type: ignore[assignment]
    memory_model: MemoryBoundKernelModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.gemm_model is None:
            object.__setattr__(self, "gemm_model", GemmTimeModel(accelerator=self.accelerator))
        if self.memory_model is None:
            object.__setattr__(self, "memory_model", MemoryBoundKernelModel(accelerator=self.accelerator))

    def evaluate(self, op: Operator) -> RooflinePoint:
        """Time and classify any compute operator."""
        if op.kind is OperatorKind.COMMUNICATION:
            raise ConfigurationError("communication operators are priced by the collective model, not the device model")
        if isinstance(op, GEMM):
            return self.gemm_model.evaluate(op)
        return self.memory_model.evaluate(op)

    def time(self, op: Operator, include_overhead: bool = True) -> float:
        """Execution time of any compute operator in seconds."""
        if isinstance(op, GEMM):
            return self.gemm_model.time(op, include_overhead=include_overhead)
        return self.memory_model.time(op, include_overhead=include_overhead)

    def overhead(self, op: Operator) -> float:
        """The per-kernel launch overhead the dispatcher applies to ``op``.

        Lets callers derive ``time`` from an already-evaluated point as
        ``point.time + overhead(op)`` without a second ``evaluate`` pass.
        """
        if isinstance(op, GEMM):
            return self.gemm_model.kernel_overhead
        return self.memory_model.kernel_overhead

    @property
    def kernel_overhead(self) -> float:
        """The per-kernel software overhead applied to GEMMs (for reports)."""
        return self.gemm_model.kernel_overhead
