"""Device-level performance models: tiling, hierarchical roofline, kernel timing."""

from .batched import BatchedGemmTimeModel, BatchedRooflineResult, GemmBatch
from .gemm import (
    DEFAULT_FAT_GEMM_DRAM_UTILIZATION,
    DEFAULT_GEMV_DRAM_UTILIZATION,
    GemmTimeModel,
    GemvUtilizationModel,
)
from .kernels import DeviceKernelModel, MemoryBoundKernelModel
from .roofline import BoundType, RooflinePoint, classify, roofline_time
from .tiling import TileChoice, choose_tile, compulsory_traffic, traffic_through_level

__all__ = [
    "BatchedGemmTimeModel",
    "BatchedRooflineResult",
    "BoundType",
    "DEFAULT_FAT_GEMM_DRAM_UTILIZATION",
    "DEFAULT_GEMV_DRAM_UTILIZATION",
    "DeviceKernelModel",
    "GemmBatch",
    "GemmTimeModel",
    "GemvUtilizationModel",
    "MemoryBoundKernelModel",
    "RooflinePoint",
    "TileChoice",
    "choose_tile",
    "classify",
    "compulsory_traffic",
    "roofline_time",
    "traffic_through_level",
]
