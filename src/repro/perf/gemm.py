"""GEMM / GEMV execution-time model for a single accelerator.

For every GEMM the model computes the pure compute time and the data-movement
time through every level of the accelerator's memory hierarchy (using the
tiling model of :mod:`repro.perf.tiling`), then takes the maximum as the
kernel time -- the hierarchical roofline.  Two practical effects the paper
calls out are modeled explicitly:

* **DRAM bandwidth under-utilization of skinny GEMMs / GEMVs** (Section 4.1):
  kernels that stream small volumes rarely reach the peak DRAM bandwidth.
  A :class:`GemvUtilizationModel` supplies either a constant factor or a
  size-dependent factor calibrated by clustering (see
  :mod:`repro.calibration.gemv`).
* **Kernel launch / software overhead**: a fixed per-kernel overhead that is
  negligible for large training GEMMs but visible for the very small kernels
  of the autoregressive decode phase.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..caching import Memo
from ..errors import ConfigurationError
from ..hardware.accelerator import AcceleratorSpec
from ..units import MICROSECOND
from ..workload.operators import GEMM
from .roofline import BoundType, RooflinePoint, classify
from .tiling import traffic_through_level

#: Default DRAM bandwidth utilization of well-formed (fat) GEMMs.
DEFAULT_FAT_GEMM_DRAM_UTILIZATION = 0.90
#: Default DRAM bandwidth utilization of skinny GEMMs / GEMVs when a constant
#: factor is requested (the paper's "constant DRAM utilization" mode).
DEFAULT_GEMV_DRAM_UTILIZATION = 0.70
#: Default size-dependent utilization table for skinny GEMMs / GEMVs, keyed by
#: the weight-operand volume in bytes.  This mirrors the paper's clustering-
#: based calibration (Fig. 3): larger streamed weight matrices achieve a larger
#: fraction of the peak DRAM bandwidth.
DEFAULT_GEMV_UTILIZATION_TABLE = (
    (0.0, 0.62),
    (32.0e6, 0.70),
    (128.0e6, 0.78),
)
#: Default per-kernel software/launch overhead.
DEFAULT_KERNEL_OVERHEAD = 2.0 * MICROSECOND
#: Fraction of a cache level usable by one GEMM's working set.
DEFAULT_CACHE_OCCUPANCY = 0.5


@dataclasses.dataclass(frozen=True)
class GemvUtilizationModel:
    """DRAM bandwidth utilization factor for skinny GEMM / GEMV kernels.

    Attributes:
        constant: Utilization used when no size-dependent table is given
            (the paper's "constant DRAM utilization" simplification).
        table: Optional calibrated table of ``(weight_bytes, utilization)``
            break-points, sorted by ``weight_bytes``; the factor of the
            nearest break-point at or below the kernel's weight volume is
            used (the paper's "varied DRAM utilization" obtained by
            clustering profiled kernels).
    """

    constant: float = DEFAULT_GEMV_DRAM_UTILIZATION
    table: Optional[Tuple[Tuple[float, float], ...]] = DEFAULT_GEMV_UTILIZATION_TABLE

    def __post_init__(self) -> None:
        if not 0 < self.constant <= 1:
            raise ConfigurationError("constant utilization must be in (0, 1]")
        # Precomputed break-point size/utilization arrays: utilization() runs
        # once per kernel query (and the batched backend once per batch), so
        # the sorted sizes are derived once here instead of on every lookup.
        sizes: Tuple[float, ...] = ()
        factors: Tuple[float, ...] = ()
        if self.table is not None:
            ordered = tuple(sorted((float(size), float(util)) for size, util in self.table))
            for _, util in ordered:
                if not 0 < util <= 1:
                    raise ConfigurationError("table utilizations must be in (0, 1]")
            object.__setattr__(self, "table", ordered)
            sizes = tuple(size for size, _ in ordered)
            factors = tuple(util for _, util in ordered)
        object.__setattr__(self, "_sizes", sizes)
        object.__setattr__(self, "_factors", factors)
        object.__setattr__(self, "_sizes_array", np.asarray(sizes, dtype=np.float64))
        object.__setattr__(self, "_factors_array", np.asarray(factors, dtype=np.float64))

    @property
    def break_sizes(self) -> Tuple[float, ...]:
        """The sorted break-point sizes of the table (empty for constant models)."""
        return self._sizes

    def utilization(self, gemm: GEMM) -> float:
        """DRAM utilization factor for ``gemm``."""
        if self.table:
            index = bisect.bisect_right(self._sizes, gemm.b_bytes) - 1
            index = max(0, index)
            return self._factors[index]
        return self.constant

    def utilization_for_weight_bytes(self, weight_bytes):
        """Vectorized utilization lookup for an array of weight-operand volumes.

        Accepts and returns NumPy ``float64`` arrays; matches
        :meth:`utilization` element-wise (same ``bisect_right`` semantics).
        """
        weight_bytes = np.asarray(weight_bytes, dtype=np.float64)
        if self.table:
            index = np.searchsorted(self._sizes_array, weight_bytes, side="right") - 1
            index = np.maximum(index, 0)
            return self._factors_array[index]
        return np.full(weight_bytes.shape, self.constant, dtype=np.float64)

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]], constant: float = DEFAULT_GEMV_DRAM_UTILIZATION) -> "GemvUtilizationModel":
        """Build a size-dependent model from ``(weight_bytes, utilization)`` pairs."""
        return cls(constant=constant, table=tuple(pairs))

    @classmethod
    def constant_model(cls, utilization: float = DEFAULT_GEMV_DRAM_UTILIZATION) -> "GemvUtilizationModel":
        """Build a constant-utilization model (the paper's simplified mode)."""
        return cls(constant=utilization, table=None)


@dataclasses.dataclass(frozen=True)
class GemmTimeModel:
    """Predicts GEMM/GEMV execution time on one accelerator.

    Attributes:
        accelerator: The device the kernel runs on.
        gemv_utilization: DRAM utilization model for skinny kernels.
        fat_gemm_dram_utilization: DRAM utilization of large, well-tiled GEMMs.
        cache_occupancy: Fraction of each cache level available for tiling.
        kernel_overhead: Fixed software overhead added to every kernel.
    """

    accelerator: AcceleratorSpec
    gemv_utilization: GemvUtilizationModel = dataclasses.field(default_factory=GemvUtilizationModel)
    fat_gemm_dram_utilization: float = DEFAULT_FAT_GEMM_DRAM_UTILIZATION
    cache_occupancy: float = DEFAULT_CACHE_OCCUPANCY
    kernel_overhead: float = DEFAULT_KERNEL_OVERHEAD

    def __post_init__(self) -> None:
        if not 0 < self.fat_gemm_dram_utilization <= 1:
            raise ConfigurationError("fat_gemm_dram_utilization must be in (0, 1]")
        if self.kernel_overhead < 0:
            raise ConfigurationError("kernel_overhead must be non-negative")
        # Memoization of evaluated kernels: sweeps re-ask the same GEMM shapes
        # thousands of times (layers x micro-batches x scenarios).  The cache
        # is keyed by the frozen GEMM descriptor and is not a dataclass field,
        # so equality/hashing of the model itself are unaffected.
        object.__setattr__(self, "_evaluation_cache", Memo())
        object.__setattr__(self, "_batched", None)

    # -- helpers ---------------------------------------------------------------

    def _dram_utilization(self, gemm: GEMM) -> float:
        if gemm.is_gemv_like:
            return self.gemv_utilization.utilization(gemm)
        return self.fat_gemm_dram_utilization

    def compute_time(self, gemm: GEMM) -> float:
        """Pure compute time of the GEMM (no memory effects)."""
        throughput = self.accelerator.sustained_flops(gemm.precision)
        return gemm.flops / throughput

    def level_traffic(self, gemm: GEMM) -> dict:
        """Bytes the GEMM moves across each memory level.

        The traffic at a level is determined by blocking for the capacity of
        the next *inner* level: DRAM traffic is set by the L2 tile, L2 traffic
        by the shared-memory tile, and the innermost level streams the
        compulsory traffic.
        """
        levels = self.accelerator.memory.levels
        traffic = {}
        for index, level in enumerate(levels):
            if index == 0:
                traffic[level.name] = traffic_through_level(gemm, None)
            else:
                inner_capacity = levels[index - 1].capacity
                traffic[level.name] = traffic_through_level(gemm, inner_capacity, occupancy=self.cache_occupancy)
        return traffic

    # -- main entry point ---------------------------------------------------------

    def evaluate(self, gemm: GEMM) -> RooflinePoint:
        """Time and classify one GEMM on the accelerator.

        Skinny GEMMs / GEMVs under-utilize every level of the hierarchy, not
        just DRAM, so their utilization factor is applied to the on-chip
        levels as well; this is what makes very fast DRAM technologies
        eventually L2-bound (paper Section 6.2).
        """
        cached = self._evaluation_cache.get(gemm)
        if cached is not None:
            return cached
        compute_time = self.compute_time(gemm)
        traffic = self.level_traffic(gemm)
        dram_name = self.accelerator.memory.dram.name
        skinny_utilization = self.gemv_utilization.utilization(gemm) if gemm.is_gemv_like else None
        level_times = {}
        for level in self.accelerator.memory.levels:
            bandwidth = level.bandwidth
            if skinny_utilization is not None:
                bandwidth *= skinny_utilization
            elif level.name == dram_name:
                bandwidth *= self._dram_utilization(gemm)
            else:
                bandwidth *= level.utilization
            level_times[level.name] = traffic[level.name] / bandwidth
        point = classify(
            name=gemm.name,
            flops=gemm.flops,
            compute_time=compute_time,
            level_times=level_times,
            level_bytes=traffic,
            outermost_level=dram_name,
        )
        return self._evaluation_cache.put(gemm, point)

    def time(self, gemm: GEMM, include_overhead: bool = True) -> float:
        """Execution time of one GEMM in seconds."""
        point = self.evaluate(gemm)
        overhead = self.kernel_overhead if include_overhead else 0.0
        return point.time + overhead

    def bound_type(self, gemm: GEMM) -> BoundType:
        """The limiting resource for one GEMM."""
        return self.evaluate(gemm).bound

    @property
    def batched(self) -> "BatchedGemmTimeModel":
        """The vectorized twin of this model (lazily built, parameters shared)."""
        if self._batched is None:
            from .batched import BatchedGemmTimeModel

            object.__setattr__(self, "_batched", BatchedGemmTimeModel.from_scalar(self))
        return self._batched

    def evaluate_many(self, gemms: Sequence[GEMM]) -> List[RooflinePoint]:
        """Evaluate a batch of GEMMs through the vectorized backend.

        Cached kernels are served from the memo; the remaining unique shapes
        are evaluated in one :meth:`BatchedGemmTimeModel.evaluate_batch` call
        (bit-for-bit identical to :meth:`evaluate`) and memoized, so scalar
        and batched queries stay interchangeable.
        """
        from .batched import GemmBatch

        gemms = list(gemms)
        missing = [gemm for gemm in dict.fromkeys(gemms) if gemm not in self._evaluation_cache]
        if missing:
            result = self.batched.evaluate_batch(GemmBatch.from_gemms(missing))
            for gemm, point in zip(missing, result.to_points()):
                self._evaluation_cache.put(gemm, point)
        return [self.evaluate(gemm) for gemm in gemms]

    def memoized(self, gemm: GEMM) -> bool:
        """Whether ``gemm``'s roofline point is already in the memo."""
        return gemm in self._evaluation_cache

    def memoize(self, gemm: GEMM, point: RooflinePoint) -> RooflinePoint:
        """Seed the memo with an externally evaluated point.

        Used by the cross-scenario batch planner
        (:mod:`repro.sweep.batchplan`) to warm this model from one shared
        :meth:`BatchedGemmTimeModel.evaluate_batch` call; the backend's
        exact-equality contract makes the seeded points indistinguishable
        from ones :meth:`evaluate` would have produced.
        """
        return self._evaluation_cache.put(gemm, point)
