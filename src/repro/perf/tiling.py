"""Cache-aware GEMM tiling: how many bytes cross each memory-hierarchy level.

The hierarchical roofline model needs, for every level of the memory
hierarchy, the number of bytes a GEMM moves across that level.  A blocked
GEMM that tiles for a cache of capacity ``C`` re-reads the A and B panels
once per tile of the other operand, so the traffic at the next outer level is

    traffic ~= m*n*k*b * (1/T_m + 1/T_n) + (write traffic of C)

where ``T_m x T_n`` is the largest output tile whose working set
(``T_m*T_k + T_k*T_n + T_m*T_n`` elements) fits in the cache.  The traffic is
never less than the compulsory traffic (reading A and B once, writing C once).
This is the DeepFlow-style memory-subsystem-aware tiling the paper builds on.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..errors import ConfigurationError
from ..workload.operators import GEMM


@dataclasses.dataclass(frozen=True)
class TileChoice:
    """The tile shape selected for one cache level.

    Attributes:
        tile_m, tile_n, tile_k: Tile dimensions in elements.
        working_set_bytes: Bytes the tile's operands occupy in the cache.
    """

    tile_m: int
    tile_n: int
    tile_k: int
    working_set_bytes: float


def choose_tile(gemm: GEMM, capacity_bytes: float, occupancy: float = 0.5) -> TileChoice:
    """Choose the largest square-ish output tile that fits in ``capacity_bytes``.

    Args:
        gemm: The GEMM to tile.
        capacity_bytes: Capacity of the cache level being tiled for.
        occupancy: Fraction of the capacity usable for the GEMM working set
            (the rest is taken by other data and double buffering).

    Returns:
        The chosen tile.  Tiles never exceed the GEMM's own dimensions.
    """
    if capacity_bytes <= 0:
        raise ConfigurationError("cache capacity must be positive")
    if not 0 < occupancy <= 1:
        raise ConfigurationError("occupancy must be in (0, 1]")
    usable = capacity_bytes * occupancy
    element = gemm.element_bytes
    # Start from a square tile covering A, B, and C panels: 3*T^2 elements.
    tile = int(math.sqrt(usable / (3.0 * element)))
    tile = max(1, tile)
    tile_m = min(gemm.m, tile)
    tile_n = min(gemm.n, tile)
    # Give the K dimension whatever capacity remains once the C tile is held.
    remaining = max(usable / element - tile_m * tile_n, 1.0)
    tile_k = int(remaining / max(1, (tile_m + tile_n)))
    tile_k = max(1, min(gemm.k, tile_k))
    working_set = (tile_m * tile_k + tile_k * tile_n + tile_m * tile_n) * element
    return TileChoice(tile_m=tile_m, tile_n=tile_n, tile_k=tile_k, working_set_bytes=working_set)


def compulsory_traffic(gemm: GEMM) -> float:
    """Minimum possible traffic: read A and B once, write (and maybe read) C once."""
    return gemm.bytes_read + gemm.bytes_written


def traffic_through_level(gemm: GEMM, capacity_bytes: Optional[float], occupancy: float = 0.5) -> float:
    """Bytes the GEMM moves across a level backed by a cache of ``capacity_bytes``.

    ``capacity_bytes=None`` means "no cache above this level", i.e. the level
    streams the compulsory traffic only (useful for the innermost level).
    """
    if capacity_bytes is None:
        return compulsory_traffic(gemm)
    tile = choose_tile(gemm, capacity_bytes, occupancy=occupancy)
    element = gemm.element_bytes
    # A panels are re-read once per column tile; B panels once per row tile.
    a_traffic = gemm.m * gemm.k * math.ceil(gemm.n / tile.tile_n) * element
    b_traffic = gemm.k * gemm.n * math.ceil(gemm.m / tile.tile_m) * element
    # Weight operands are shared across the batch and therefore only loaded once
    # per batch sweep; activation operands are distinct per batch element.
    a_total = a_traffic * gemm.batch
    b_total = b_traffic * (1 if gemm.weight_operand else gemm.batch)
    c_total = gemm.c_bytes * (2.0 if gemm.accumulate else 1.0)
    traffic = a_total + b_total + c_total
    return max(traffic, compulsory_traffic(gemm))
