"""Hierarchical roofline model: classify and time kernels on one device.

A kernel's execution time on one accelerator is the maximum of

* its pure compute time (``flops / sustained_throughput``), and
* its data-movement time through every level of the memory hierarchy
  (``bytes_at_level / effective_bandwidth_of_level``).

The level (or compute) that attains the maximum is the kernel's *bound type*.
This is the per-device model at the core of the paper (Section 3.1), built on
DeepFlow's hierarchical roofline with memory-subsystem-aware tiling.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional


class BoundType(enum.Enum):
    """What limits a kernel's execution time."""

    COMPUTE = "compute"
    MEMORY = "memory"          # bound by the outermost level (device DRAM)
    CACHE = "cache"            # bound by an intermediate on-chip level (e.g. L2)
    NETWORK = "network"        # used by the system-level breakdowns
    LATENCY = "latency"

    @property
    def is_memory_like(self) -> bool:
        """True for DRAM- or cache-bound kernels."""
        return self in (BoundType.MEMORY, BoundType.CACHE)


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """The timing decomposition of one kernel on one device.

    Attributes:
        name: Kernel name.
        flops: FLOPs executed.
        compute_time: Time the compute units need, in seconds.
        level_times: Data-movement time per memory level, in seconds.
        level_bytes: Bytes moved per memory level.
        bound: The limiting resource.
        bound_level: Name of the limiting memory level (empty when compute bound).
    """

    name: str
    flops: float
    compute_time: float
    level_times: Dict[str, float]
    level_bytes: Dict[str, float]
    bound: BoundType
    bound_level: str = ""

    @property
    def time(self) -> float:
        """Execution time: the maximum over compute and all memory levels.

        Computed once and cached on the instance: memoized points are read
        in every step of the hot sweep/serving loops, and the max over the
        level dict is not free.  The cache is not a dataclass field, so
        equality and serialization are unaffected.
        """
        cached = self.__dict__.get("_time")
        if cached is None:
            slowest_level = max(self.level_times.values(), default=0.0)
            cached = max(self.compute_time, slowest_level)
            object.__setattr__(self, "_time", cached)
        return cached

    @property
    def memory_time(self) -> float:
        """Data-movement time of the outermost (DRAM) level."""
        if not self.level_times:
            return 0.0
        return self.level_times.get("DRAM", max(self.level_times.values()))

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (infinite for kernels that move no data)."""
        dram_bytes = self.level_bytes.get("DRAM", sum(self.level_bytes.values()))
        return self.flops / dram_bytes if dram_bytes > 0 else float("inf")

    @property
    def is_compute_bound(self) -> bool:
        """Whether the kernel is compute bound."""
        return self.bound is BoundType.COMPUTE


def classify(
    name: str,
    flops: float,
    compute_time: float,
    level_times: Dict[str, float],
    level_bytes: Optional[Dict[str, float]] = None,
    outermost_level: str = "DRAM",
) -> RooflinePoint:
    """Build a :class:`RooflinePoint`, deciding the bound type.

    The bound type is decided by the largest time component.  Ties between
    compute and memory are resolved in favour of compute (the kernel overlaps
    perfectly in that case and is conventionally called compute bound).
    """
    level_times = dict(level_times)
    level_bytes = dict(level_bytes or {})
    slowest_level_name = ""
    slowest_level_time = 0.0
    for level_name, level_time in level_times.items():
        if level_time > slowest_level_time:
            slowest_level_name = level_name
            slowest_level_time = level_time
    if compute_time >= slowest_level_time:
        bound = BoundType.COMPUTE
        bound_level = ""
    else:
        bound = BoundType.MEMORY if slowest_level_name == outermost_level else BoundType.CACHE
        bound_level = slowest_level_name
    return RooflinePoint(
        name=name,
        flops=flops,
        compute_time=compute_time,
        level_times=level_times,
        level_bytes=level_bytes,
        bound=bound,
        bound_level=bound_level,
    )


def roofline_time(flops: float, bytes_moved: float, throughput: float, bandwidth: float) -> float:
    """Single-level roofline time: ``max(flops/throughput, bytes/bandwidth)``.

    A convenience for quick estimates and for the memory-bound kernels that do
    not benefit from tiling.
    """
    compute_time = flops / throughput if throughput > 0 else float("inf")
    memory_time = bytes_moved / bandwidth if bandwidth > 0 else float("inf")
    return max(compute_time, memory_time)
