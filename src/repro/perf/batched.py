"""NumPy-vectorized GEMM roofline backend: whole batches in one set of array ops.

The scalar :class:`~repro.perf.gemm.GemmTimeModel` walks an object-per-kernel
Python path (``GEMM`` dataclass -> :func:`~repro.perf.tiling.traffic_through_level`
-> dict-of-level-times -> :func:`~repro.perf.roofline.classify`), which is what
bottlenecks large sweeps and design-space searches.  This module evaluates the
same hierarchical-roofline model for a *batch* of GEMMs at once:

* :class:`GemmBatch` holds the struct-of-arrays GEMM description
  ``(m, n, k, batch, precision, weight_operand, accumulate)``.
* :class:`BatchedGemmTimeModel` computes tiling traffic, per-level times,
  utilization factors, bound classification, and kernel times for the whole
  batch with NumPy array operations.
* :class:`BatchedRooflineResult` is the struct-of-arrays answer, convertible
  back to per-kernel :class:`~repro.perf.roofline.RooflinePoint` objects.

Numerical contract
------------------
The batched backend mirrors the scalar model's floating-point operation order
exactly, so results are **bit-for-bit identical** to
:meth:`GemmTimeModel.evaluate <repro.perf.gemm.GemmTimeModel.evaluate>` as
long as the integer intermediate products (``m*k*batch`` and
``m*k*ceil(n/tile)``) stay below ``2**53``, i.e. within the exact-integer
range of IEEE float64 -- which covers every realistic kernel shape.  The
equivalence is enforced by the grid tests in ``tests/perf/test_batched.py``.

Array-shape contract
--------------------
All arrays of a :class:`GemmBatch` are one-dimensional with a common length
``len(batch)`` (the number of GEMMs).  Every array on the result
(:attr:`~BatchedRooflineResult.compute_time`, each entry of
:attr:`~BatchedRooflineResult.level_times` / ``level_bytes``,
:attr:`~BatchedRooflineResult.kernel_time`, ``bound_codes``) has that same
length and dtype ``float64`` (``int8`` for the bound codes); row ``i``
everywhere describes GEMM ``i`` of the input.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..hardware.accelerator import AcceleratorSpec
from ..hardware.datatypes import Precision
from ..workload.operators import GEMM
from .gemm import (
    DEFAULT_CACHE_OCCUPANCY,
    DEFAULT_FAT_GEMM_DRAM_UTILIZATION,
    DEFAULT_KERNEL_OVERHEAD,
    GemvUtilizationModel,
)
from .roofline import BoundType, RooflinePoint

#: ``bound_codes`` values of :class:`BatchedRooflineResult`.
BOUND_COMPUTE = 0
BOUND_MEMORY = 1
BOUND_CACHE = 2

_BOUND_BY_CODE = {
    BOUND_COMPUTE: BoundType.COMPUTE,
    BOUND_MEMORY: BoundType.MEMORY,
    BOUND_CACHE: BoundType.CACHE,
}

#: ``min(m, n)`` at or below which a GEMM counts as skinny / GEMV-like.
#: Mirrors :attr:`repro.workload.operators.GEMM.is_gemv_like`.
GEMV_LIKE_THRESHOLD = 16


@dataclasses.dataclass(frozen=True)
class GemmBatch:
    """Struct-of-arrays description of a batch of GEMMs.

    Attributes:
        m, n, k: GEMM dimensions, ``float64`` arrays of shape ``(size,)``
            (integral values; float64 keeps every array op vectorized while
            staying exact below ``2**53``).
        batch: Batched-GEMM repeat count per row, same shape.
        element_bytes: Bytes per element at each row's precision.
        weight_operand: Boolean array; ``True`` rows share their B operand
            across the batch dimension (model weights).
        accumulate: Boolean array; ``True`` rows read-modify-write C.
        precisions: Per-row :class:`~repro.hardware.datatypes.Precision`,
            used to group rows by sustained throughput.
        names: Per-row kernel names, carried into
            :meth:`BatchedRooflineResult.to_points`.
    """

    m: np.ndarray
    n: np.ndarray
    k: np.ndarray
    batch: np.ndarray
    element_bytes: np.ndarray
    weight_operand: np.ndarray
    accumulate: np.ndarray
    precisions: Tuple[Precision, ...]
    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        size = self.m.shape[0]
        for field in ("n", "k", "batch", "element_bytes", "weight_operand", "accumulate"):
            if getattr(self, field).shape != (size,):
                raise ConfigurationError(f"GemmBatch arrays must share shape ({size},); {field} differs")
        if len(self.precisions) != size or len(self.names) != size:
            raise ConfigurationError("GemmBatch precisions/names must have one entry per row")
        if size and min(self.m.min(), self.n.min(), self.k.min(), self.batch.min()) < 1:
            raise ConfigurationError("GemmBatch: m, n, k and batch must be >= 1")

    def __len__(self) -> int:
        return self.m.shape[0]

    @property
    def size(self) -> int:
        """Number of GEMMs in the batch."""
        return len(self)

    @property
    def flops(self) -> np.ndarray:
        """FLOPs per row, with the scalar model's operation order (``2.0*m*n*k*batch``)."""
        return 2.0 * self.m * self.n * self.k * self.batch

    @property
    def is_gemv_like(self) -> np.ndarray:
        """Boolean mask of skinny GEMM / GEMV rows (``min(m, n) <= 16``)."""
        return np.minimum(self.m, self.n) <= GEMV_LIKE_THRESHOLD

    @property
    def a_bytes(self) -> np.ndarray:
        """Bytes of the activation (A) operand across the whole batch, per row."""
        return self.m * self.k * self.batch * self.element_bytes

    @property
    def b_bytes(self) -> np.ndarray:
        """Bytes of the B operand (weights are not replicated across the batch)."""
        replication = np.where(self.weight_operand, 1.0, self.batch)
        return self.k * self.n * replication * self.element_bytes

    @property
    def c_bytes(self) -> np.ndarray:
        """Bytes of the output (C) operand across the whole batch, per row."""
        return self.m * self.n * self.batch * self.element_bytes

    @property
    def compulsory_traffic(self) -> np.ndarray:
        """Minimum possible traffic per row: read A and B once, write (read) C once."""
        bytes_read = self.a_bytes + self.b_bytes
        bytes_read = np.where(self.accumulate, bytes_read + self.c_bytes, bytes_read)
        return bytes_read + self.c_bytes

    @classmethod
    def from_arrays(
        cls,
        m: Sequence[float],
        n: Sequence[float],
        k: Sequence[float],
        batch: "Sequence[float] | float" = 1,
        precision: "Sequence[Precision | str] | Precision | str" = Precision.FP16,
        weight_operand: "Sequence[bool] | bool" = False,
        accumulate: "Sequence[bool] | bool" = False,
        names: Optional[Sequence[str]] = None,
    ) -> "GemmBatch":
        """Build a batch from parallel arrays (scalars broadcast to all rows).

        ``precision`` accepts a :class:`Precision`, a catalog string like
        ``"fp16"``, or one of either per row.
        """
        m_arr = np.atleast_1d(np.asarray(m, dtype=np.float64))
        size = m_arr.shape[0]

        def _broadcast(value, dtype):
            arr = np.asarray(value, dtype=dtype)
            return np.broadcast_to(arr, (size,)).copy() if arr.ndim == 0 else arr

        if isinstance(precision, (Precision, str)):
            precisions = (Precision.parse(precision),) * size
        else:
            precisions = tuple(Precision.parse(p) for p in precision)
        element_bytes = np.array([p.bytes_per_element for p in precisions], dtype=np.float64)
        return cls(
            m=m_arr,
            n=_broadcast(n, np.float64),
            k=_broadcast(k, np.float64),
            batch=_broadcast(batch, np.float64),
            element_bytes=element_bytes,
            weight_operand=_broadcast(weight_operand, bool),
            accumulate=_broadcast(accumulate, bool),
            precisions=precisions,
            names=tuple(names) if names is not None else ("gemm",) * size,
        )

    @classmethod
    def from_gemms(cls, gemms: Iterable[GEMM]) -> "GemmBatch":
        """Build a batch from scalar :class:`~repro.workload.operators.GEMM` descriptors."""
        gemms = list(gemms)
        return cls(
            m=np.array([g.m for g in gemms], dtype=np.float64),
            n=np.array([g.n for g in gemms], dtype=np.float64),
            k=np.array([g.k for g in gemms], dtype=np.float64),
            batch=np.array([g.batch for g in gemms], dtype=np.float64),
            element_bytes=np.array([g.element_bytes for g in gemms], dtype=np.float64),
            weight_operand=np.array([g.weight_operand for g in gemms], dtype=bool),
            accumulate=np.array([g.accumulate for g in gemms], dtype=bool),
            precisions=tuple(g.precision for g in gemms),
            names=tuple(g.name for g in gemms),
        )


@dataclasses.dataclass(frozen=True)
class BatchedRooflineResult:
    """Struct-of-arrays timing decomposition of one GEMM batch.

    Attributes:
        names: Kernel name per row.
        flops: FLOPs per row.
        compute_time: Pure compute time per row, in seconds.
        level_names: Memory-level names, innermost first.
        level_times: Data-movement time per level, arrays of shape ``(size,)``.
        level_bytes: Bytes moved per level, same shapes.
        kernel_time: Kernel time per row (max of compute and every level),
            without the per-kernel launch overhead.
        bound_codes: ``int8`` per row: :data:`BOUND_COMPUTE`,
            :data:`BOUND_MEMORY` (outermost level), or :data:`BOUND_CACHE`.
        bound_levels: Name of the limiting level per row (``""`` when
            compute bound).
    """

    names: Tuple[str, ...]
    flops: np.ndarray
    compute_time: np.ndarray
    level_names: Tuple[str, ...]
    level_times: Dict[str, np.ndarray]
    level_bytes: Dict[str, np.ndarray]
    kernel_time: np.ndarray
    bound_codes: np.ndarray
    bound_levels: Tuple[str, ...]

    def __len__(self) -> int:
        return self.kernel_time.shape[0]

    @property
    def size(self) -> int:
        """Number of GEMMs in the result."""
        return len(self)

    def bounds(self) -> List[BoundType]:
        """Per-row bound types as enum values."""
        return [_BOUND_BY_CODE[int(code)] for code in self.bound_codes]

    def times(self, kernel_overhead: float = 0.0) -> np.ndarray:
        """Execution times per row, optionally adding a fixed launch overhead."""
        if kernel_overhead:
            return self.kernel_time + kernel_overhead
        return self.kernel_time

    def point_at(self, index: int) -> RooflinePoint:
        """Materialize the :class:`RooflinePoint` of one row (scalar-compatible).

        The point is built from the same floats the scalar model would have
        computed (the backend's exact-equality contract), so it can seed the
        scalar model's memo -- the cross-scenario batch planner warms only
        the rows a plan actually needs instead of materializing the whole
        batch.
        """
        return RooflinePoint(
            name=self.names[index],
            flops=float(self.flops[index]),
            compute_time=float(self.compute_time[index]),
            level_times={name: float(self.level_times[name][index]) for name in self.level_names},
            level_bytes={name: float(self.level_bytes[name][index]) for name in self.level_names},
            bound=_BOUND_BY_CODE[int(self.bound_codes[index])],
            bound_level=self.bound_levels[index],
        )

    def to_points(self) -> List[RooflinePoint]:
        """Materialize per-kernel :class:`RooflinePoint` objects (scalar-compatible)."""
        return [self.point_at(index) for index in range(len(self))]


@dataclasses.dataclass(frozen=True)
class BatchedGemmTimeModel:
    """Vectorized twin of :class:`~repro.perf.gemm.GemmTimeModel`.

    Shares the scalar model's parameters and produces bit-for-bit identical
    numbers (see the module docstring for the exact-equality conditions);
    :meth:`GemmTimeModel.evaluate_many <repro.perf.gemm.GemmTimeModel.evaluate_many>`
    uses it as its backend.

    Attributes:
        accelerator: The device the kernels run on.
        gemv_utilization: DRAM utilization model for skinny kernels.
        fat_gemm_dram_utilization: DRAM utilization of large, well-tiled GEMMs.
        cache_occupancy: Fraction of each cache level available for tiling.
        kernel_overhead: Fixed software overhead added by :meth:`times`.
    """

    accelerator: AcceleratorSpec
    gemv_utilization: GemvUtilizationModel = dataclasses.field(default_factory=GemvUtilizationModel)
    fat_gemm_dram_utilization: float = DEFAULT_FAT_GEMM_DRAM_UTILIZATION
    cache_occupancy: float = DEFAULT_CACHE_OCCUPANCY
    kernel_overhead: float = DEFAULT_KERNEL_OVERHEAD

    def __post_init__(self) -> None:
        # Mirror the scalar twin's parameter validation (GemmTimeModel raises
        # the same errors; the tiling occupancy is checked there lazily).
        if not 0 < self.fat_gemm_dram_utilization <= 1:
            raise ConfigurationError("fat_gemm_dram_utilization must be in (0, 1]")
        if not 0 < self.cache_occupancy <= 1:
            raise ConfigurationError("occupancy must be in (0, 1]")
        if self.kernel_overhead < 0:
            raise ConfigurationError("kernel_overhead must be non-negative")

    @classmethod
    def from_scalar(cls, model) -> "BatchedGemmTimeModel":
        """Build the vectorized twin of a :class:`~repro.perf.gemm.GemmTimeModel`."""
        return cls(
            accelerator=model.accelerator,
            gemv_utilization=model.gemv_utilization,
            fat_gemm_dram_utilization=model.fat_gemm_dram_utilization,
            cache_occupancy=model.cache_occupancy,
            kernel_overhead=model.kernel_overhead,
        )

    # -- vectorized building blocks ---------------------------------------------------

    def compute_times(self, batch: GemmBatch) -> np.ndarray:
        """Pure compute time per row (no memory effects)."""
        throughput = np.empty(len(batch), dtype=np.float64)
        for precision in set(batch.precisions):
            mask = np.array([p is precision for p in batch.precisions], dtype=bool)
            throughput[mask] = self.accelerator.sustained_flops(precision)
        return batch.flops / throughput

    def _tiled_traffic(self, batch: GemmBatch, capacity_bytes: float) -> np.ndarray:
        """Vectorized :func:`~repro.perf.tiling.traffic_through_level` for one level."""
        element = batch.element_bytes
        usable = capacity_bytes * self.cache_occupancy
        tile = np.maximum(1.0, np.floor(np.sqrt(usable / (3.0 * element))))
        tile_m = np.minimum(batch.m, tile)
        tile_n = np.minimum(batch.n, tile)
        a_traffic = batch.m * batch.k * np.ceil(batch.n / tile_n) * element
        b_traffic = batch.k * batch.n * np.ceil(batch.m / tile_m) * element
        a_total = a_traffic * batch.batch
        b_total = b_traffic * np.where(batch.weight_operand, 1.0, batch.batch)
        c_total = batch.c_bytes * np.where(batch.accumulate, 2.0, 1.0)
        traffic = a_total + b_total + c_total
        return np.maximum(traffic, batch.compulsory_traffic)

    def level_traffic(self, batch: GemmBatch) -> Dict[str, np.ndarray]:
        """Bytes each GEMM moves across each memory level (see scalar ``level_traffic``)."""
        levels = self.accelerator.memory.levels
        traffic: Dict[str, np.ndarray] = {}
        for index, level in enumerate(levels):
            if index == 0:
                traffic[level.name] = batch.compulsory_traffic
            else:
                traffic[level.name] = self._tiled_traffic(batch, levels[index - 1].capacity)
        return traffic

    def skinny_utilization(self, batch: GemmBatch) -> np.ndarray:
        """Per-row DRAM utilization factor of the skinny (GEMV-like) rows.

        Rows that are not GEMV-like get the fat-GEMM factor; the caller masks
        with :attr:`GemmBatch.is_gemv_like` to decide which applies where.
        """
        return self.gemv_utilization.utilization_for_weight_bytes(batch.b_bytes)

    # -- main entry point -------------------------------------------------------------

    def evaluate_batch(self, batch: GemmBatch) -> BatchedRooflineResult:
        """Time and classify every GEMM of the batch in one set of array ops."""
        size = len(batch)
        compute_time = self.compute_times(batch)
        traffic = self.level_traffic(batch)
        levels = self.accelerator.memory.levels
        dram_name = self.accelerator.memory.dram.name
        skinny = batch.is_gemv_like
        skinny_factor = self.skinny_utilization(batch)

        level_times: Dict[str, np.ndarray] = {}
        for level in levels:
            default_factor = self.fat_gemm_dram_utilization if level.name == dram_name else level.utilization
            bandwidth = np.where(skinny, level.bandwidth * skinny_factor, level.bandwidth * default_factor)
            level_times[level.name] = traffic[level.name] / bandwidth

        # Slowest level per row, first-wins on ties (mirrors the scalar classify()).
        slowest_time = np.zeros(size, dtype=np.float64)
        slowest_index = np.full(size, -1, dtype=np.int64)
        for index, level in enumerate(levels):
            mask = level_times[level.name] > slowest_time
            slowest_time = np.where(mask, level_times[level.name], slowest_time)
            slowest_index = np.where(mask, index, slowest_index)

        compute_bound = compute_time >= slowest_time
        dram_index = next(i for i, level in enumerate(levels) if level.name == dram_name)
        bound_codes = np.where(
            compute_bound,
            BOUND_COMPUTE,
            np.where(slowest_index == dram_index, BOUND_MEMORY, BOUND_CACHE),
        ).astype(np.int8)
        level_name_by_index = [level.name for level in levels]
        bound_levels = tuple(
            "" if compute_bound[row] else level_name_by_index[int(slowest_index[row])] for row in range(size)
        )
        return BatchedRooflineResult(
            names=batch.names,
            flops=batch.flops,
            compute_time=compute_time,
            level_names=tuple(level_name_by_index),
            level_times=level_times,
            level_bytes=traffic,
            kernel_time=np.maximum(compute_time, slowest_time),
            bound_codes=bound_codes,
            bound_levels=bound_levels,
        )

    def times(self, batch: GemmBatch, include_overhead: bool = True) -> np.ndarray:
        """Execution times per row in seconds (overhead included by default)."""
        result = self.evaluate_batch(batch)
        return result.times(self.kernel_overhead if include_overhead else 0.0)
