"""Node-level system description: several accelerators behind a fast fabric."""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .accelerator import AcceleratorSpec
from .network import Interconnect


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """A single server node.

    Attributes:
        accelerator: The device spec every slot in the node uses.
        devices_per_node: Number of accelerators in the node (e.g. 8 for DGX).
        intra_node_fabric: The fabric between the accelerators of one node
            (NVLink generation or the NVLink Switch).
    """

    accelerator: AcceleratorSpec
    devices_per_node: int = 8
    intra_node_fabric: Interconnect = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.devices_per_node < 1:
            raise ConfigurationError("devices_per_node must be at least 1")
        if self.intra_node_fabric is None:
            raise ConfigurationError("NodeSpec requires an intra_node_fabric")

    @property
    def total_dram_capacity(self) -> float:
        """Aggregate DRAM capacity of the node in bytes."""
        return self.accelerator.dram_capacity * self.devices_per_node
