"""System catalog: named, registry-backed :class:`SystemSpec` resolution.

The model zoo (:mod:`repro.models.zoo`) lets every API accept a model *name*
instead of a constructed :class:`~repro.models.transformer.TransformerConfig`.
This module gives the hardware layer the symmetric front door for whole
systems, so scenario axes, JSON study specs, and the ``python -m repro`` CLI
can say ``"A100"`` or ``"H100x4"`` where code used to hand-build a
:class:`~repro.hardware.cluster.SystemSpec`:

* :func:`get_system` resolves a name (or an already-built spec) to a
  :class:`SystemSpec`,
* :func:`list_systems` enumerates every resolvable name, and
* :func:`register_system` adds user-defined systems to the catalog.

Name resolution, in precedence order:

1. **Registered systems** -- anything added via :func:`register_system`.
2. **Preset clusters** -- the paper's scaling-study clusters
   (``"A100-HDR"``, ``"H100-NVS"``, ... including the ``-L`` variants),
   built with :data:`DEFAULT_NUM_DEVICES` devices by default.
3. **Accelerator names** -- ``"A100"``, ``"H100"``, ... resolve to the
   *canonical single-node device system* (8 devices, NVLink3 intra-node,
   HDR-IB inter-node) that bottleneck/attention-bound scenarios always used;
   see :func:`device_system`.

Any of the above additionally accepts an ``x<count>`` device-count suffix
(``"A100x2"``, ``"H100-NVSx512"``, ``"my-clusterx4"``), and all lookups are
case-insensitive (``_`` and ``-`` are interchangeable).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import UnknownHardwareError
from .accelerator import AcceleratorSpec, get_accelerator
from .cluster import _PRESET_RECIPES, SystemSpec, build_system, preset_cluster

#: Device count of canonically-resolved systems (one full node of 8, plus the
#: preset clusters when no explicit count is requested).
DEFAULT_NUM_DEVICES = 8

#: User-registered systems: normalized name -> zero-argument builder.
_REGISTERED: Dict[str, Callable[[], SystemSpec]] = {}

#: Interned resolutions: ``(normalized name, num_devices)`` -> spec, and
#: accelerator -> canonical device system.  ``SystemSpec`` is frozen, so
#: returning the same object for the same request is safe -- and it makes
#: repeat resolutions identity-equal, which the sweep layer's digest/engine
#: caches key on (hashing a deep spec per scenario is measurable).
_RESOLVED_CACHE: Dict["tuple[str, Optional[int]]", SystemSpec] = {}
_DEVICE_SYSTEM_CACHE: Dict[AcceleratorSpec, SystemSpec] = {}


def _clear_resolution_caches() -> None:
    _RESOLVED_CACHE.clear()
    _DEVICE_SYSTEM_CACHE.clear()


def _normalize(name: str) -> str:
    """The catalog's canonical key form (case-insensitive, ``_`` == ``-``)."""
    return name.strip().upper().replace("_", "-")


def device_system(accelerator: "AcceleratorSpec | str") -> SystemSpec:
    """Wrap a bare accelerator into its canonical single-node system.

    This is the wrapper device-only scenario kinds (GEMM bottlenecks, the
    attention-bound breakdown) key their caches on: 8 devices, NVLink3
    intra-node, HDR-IB inter-node, named after the device.  Keeping it
    canonical makes those cache keys independent of whatever cluster the
    caller happened to hold.
    """
    device = accelerator if isinstance(accelerator, AcceleratorSpec) else get_accelerator(accelerator)
    cached = _DEVICE_SYSTEM_CACHE.get(device)
    if cached is None:
        cached = build_system(
            device,
            num_devices=DEFAULT_NUM_DEVICES,
            intra_node="NVLink3",
            inter_node="HDR-IB",
            name=device.name,
        )
        _DEVICE_SYSTEM_CACHE[device] = cached
    return cached


def register_system(system: "SystemSpec | Callable[[], SystemSpec]", name: Optional[str] = None) -> str:
    """Add a system (or a zero-argument builder for one) to the catalog.

    Args:
        system: The spec to register, or a callable building it lazily.
        name: Catalog name; defaults to ``system.name`` for specs (builders
            need an explicit name).

    Returns:
        The registered name.
    """
    if isinstance(system, SystemSpec):
        spec = system
        key = (name or spec.name).strip()
        _REGISTERED[_normalize(key)] = lambda: spec
        _clear_resolution_caches()
        return key
    if name is None:
        raise UnknownHardwareError("registering a system builder requires an explicit name")
    _REGISTERED[_normalize(name)] = system
    _clear_resolution_caches()
    return name.strip()


def unregister_system(name: str) -> None:
    """Remove a registered system (no-op if absent); mainly for tests."""
    _REGISTERED.pop(_normalize(name), None)
    _clear_resolution_caches()


def get_system(system: "SystemSpec | AcceleratorSpec | str", num_devices: Optional[int] = None) -> SystemSpec:
    """Resolve ``system`` to a :class:`SystemSpec`.

    Already-built specs pass through untouched; accelerator specs wrap into
    their canonical device system; strings resolve through the catalog (see
    the module docstring for the precedence order).  ``num_devices``
    overrides the device count of name-resolved systems.
    """
    if isinstance(system, SystemSpec):
        return system if num_devices is None else system.with_num_devices(num_devices)
    if isinstance(system, AcceleratorSpec):
        resolved = device_system(system)
        return resolved if num_devices is None else resolved.with_num_devices(num_devices)
    key = _normalize(str(system))
    interned = _RESOLVED_CACHE.get((key, num_devices))
    if interned is not None:
        return interned
    resolved = _resolve_name(key)
    sized = num_devices
    if resolved is None:
        base, count = _split_sized_name(key)
        if count is not None:
            resolved = _resolve_name(base)
            if resolved is not None and sized is None:
                sized = count
    if resolved is None:
        raise UnknownHardwareError(
            f"unknown system {system!r}; available: {list_systems()} "
            f"(any name takes an 'x<count>' suffix, e.g. 'A100x2')"
        )
    if sized is not None:
        resolved = resolved.with_num_devices(sized)
    _RESOLVED_CACHE[(key, num_devices)] = resolved
    return resolved


def _resolve_name(key: str) -> Optional[SystemSpec]:
    """Resolve one normalized catalog name, or None when nothing matches."""
    builder = _REGISTERED.get(key)
    if builder is not None:
        return builder()
    preset_key = key[:-2] if key.endswith("-L") else key
    if preset_key in _PRESET_RECIPES:
        return preset_cluster(key, num_devices=DEFAULT_NUM_DEVICES)
    try:
        return device_system(get_accelerator(key))
    except UnknownHardwareError:
        return None


def _split_sized_name(key: str) -> "tuple[str, Optional[int]]":
    """Split ``"A100X4"`` into ``("A100", 4)``; names without a count pass through."""
    base, sep, suffix = key.rpartition("X")
    if sep and base and suffix.isdigit():
        return base, int(suffix)
    return key, None


def list_systems() -> List[str]:
    """Every name :func:`get_system` resolves (registered, presets, accelerators)."""
    from .accelerator import _CATALOG_BUILDERS

    names = set(_REGISTERED)
    names.update(_PRESET_RECIPES)
    names.update(_CATALOG_BUILDERS)
    return sorted(names)
