"""Hardware layer: accelerators, memory, networks, technology nodes, µArch engine."""

from .accelerator import (
    AcceleratorSpec,
    custom_accelerator,
    get_accelerator,
    list_accelerators,
)
from .catalog import (
    device_system,
    get_system,
    list_systems,
    register_system,
    unregister_system,
)
from .cluster import SystemSpec, build_system, preset_cluster
from .compute import ComputeSpec
from .datatypes import Precision
from .memory import (
    DRAM_TECHNOLOGIES,
    INFERENCE_MEMORY_SWEEP,
    TRAINING_MEMORY_SWEEP,
    MemoryHierarchy,
    MemoryLevel,
    MemoryTechnology,
    get_dram_technology,
    make_gpu_hierarchy,
)
from .network import INTERCONNECTS, Interconnect, custom_interconnect, get_interconnect
from .node import NodeSpec
from .technology import (
    AREA_SCALING_PER_NODE,
    NODE_ORDER,
    POWER_SCALING_PER_NODE,
    TechnologyNode,
    all_nodes,
    get_node,
    scaling_factors,
)
from .uarch import (
    MicroArchitecture,
    ResourceAllocation,
    ResourceBudget,
    derive_device,
)

__all__ = [
    "AcceleratorSpec",
    "ComputeSpec",
    "DRAM_TECHNOLOGIES",
    "INFERENCE_MEMORY_SWEEP",
    "INTERCONNECTS",
    "Interconnect",
    "MemoryHierarchy",
    "MemoryLevel",
    "MemoryTechnology",
    "MicroArchitecture",
    "NodeSpec",
    "NODE_ORDER",
    "Precision",
    "ResourceAllocation",
    "ResourceBudget",
    "SystemSpec",
    "TechnologyNode",
    "TRAINING_MEMORY_SWEEP",
    "AREA_SCALING_PER_NODE",
    "POWER_SCALING_PER_NODE",
    "all_nodes",
    "build_system",
    "custom_accelerator",
    "custom_interconnect",
    "derive_device",
    "device_system",
    "get_accelerator",
    "get_dram_technology",
    "get_interconnect",
    "get_node",
    "get_system",
    "list_accelerators",
    "list_systems",
    "make_gpu_hierarchy",
    "preset_cluster",
    "register_system",
    "scaling_factors",
    "unregister_system",
]
