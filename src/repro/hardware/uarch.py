"""Micro-architecture engine: derive a device from technology parameters.

This is the second input path of the architecture abstraction layer.  When a
device cannot be described directly (e.g. a hypothetical accelerator at the
N3 node with HBM4), the µArch engine derives the coarse-grained performance
drivers -- compute throughput, on-chip capacities and bandwidths -- from a
technology node, an area/power budget, and an allocation of that budget to
the compute array and the last-level cache.

Densities are calibrated against the A100 (N7, 826 mm2, 400 W): the engine
reproduces the A100's headline figures when given its budget and then scales
them with the technology-node factors of :mod:`repro.hardware.technology`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import ConfigurationError
from ..units import MIB, TBPS, TFLOPS
from .accelerator import AcceleratorSpec
from .compute import ComputeSpec
from .datatypes import Precision
from .memory import MemoryHierarchy, MemoryLevel, MemoryTechnology, get_dram_technology
from .technology import TechnologyNode, get_node

# --- Calibration constants (anchored to the A100 at N7) ---------------------
#: Reference technology node for all densities.
REFERENCE_NODE = "N7"
#: FP16 tensor throughput per mm2 of compute-array area at the reference node.
FP16_FLOPS_PER_MM2 = 312 * TFLOPS / (826.0 * 0.60)
#: FP16 tensor throughput per watt of compute power at the reference node.
FP16_FLOPS_PER_WATT = 312 * TFLOPS / (400.0 * 0.65)
#: SRAM capacity per mm2 at the reference node (L2-style arrays).
SRAM_BYTES_PER_MM2 = 40 * MIB / (826.0 * 0.15)
#: L2 bandwidth per byte of capacity at the reference node.
L2_BANDWIDTH_PER_BYTE = (4.8 * TBPS) / (40 * MIB)
#: Shared-memory bandwidth per unit of FP16 throughput (register/SMEM feeds the MMA units).
SHARED_BW_PER_FLOP = (80 * TBPS) / (312 * TFLOPS)
#: Fraction of the L2 area density that SRAM scales with per logic node step
#: (SRAM scales worse than logic; 0.8 of the logic scaling per step).
SRAM_SCALING_DISCOUNT = 0.8


@dataclasses.dataclass(frozen=True)
class ResourceBudget:
    """Silicon budget available to the µArch engine.

    Attributes:
        area_mm2: Total compute-die area in mm2.
        power_watts: Total board power in watts.
        perimeter_mm: Die perimeter available for off-chip I/O (informational;
            constrains the number of HBM sites in the DSE).
    """

    area_mm2: float = 826.0
    power_watts: float = 400.0
    perimeter_mm: float = 120.0

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0 or self.power_watts <= 0 or self.perimeter_mm <= 0:
            raise ConfigurationError("resource budget entries must be positive")


@dataclasses.dataclass(frozen=True)
class ResourceAllocation:
    """How the budget is split between the major on-die components.

    The fractions do not need to sum exactly to one; the remainder is
    attributed to I/O, network-on-chip and control overhead.
    """

    compute_area_fraction: float = 0.60
    l2_area_fraction: float = 0.15
    compute_power_fraction: float = 0.65
    memory_power_fraction: float = 0.20

    def __post_init__(self) -> None:
        for label, value in (
            ("compute_area_fraction", self.compute_area_fraction),
            ("l2_area_fraction", self.l2_area_fraction),
            ("compute_power_fraction", self.compute_power_fraction),
            ("memory_power_fraction", self.memory_power_fraction),
        ):
            if not 0 < value < 1:
                raise ConfigurationError(f"{label} must be in (0, 1), got {value}")
        if self.compute_area_fraction + self.l2_area_fraction >= 1.0:
            raise ConfigurationError("compute + L2 area fractions must leave room for I/O and control")
        if self.compute_power_fraction + self.memory_power_fraction >= 1.0:
            raise ConfigurationError("compute + memory power fractions must leave headroom")


@dataclasses.dataclass(frozen=True)
class MicroArchitecture:
    """A derived micro-architecture: technology + budget + allocation.

    Attributes:
        node: Logic technology node of the compute die.
        budget: Area/power/perimeter budget.
        allocation: Budget split between compute and on-chip memory.
        dram: Off-chip memory technology.
        precision_ratios: Relative throughput of narrower formats versus
            FP16 (e.g. FP8 at 2x, FP4 at 4x) when the derived device
            supports them.
    """

    node: TechnologyNode
    budget: ResourceBudget = ResourceBudget()
    allocation: ResourceAllocation = ResourceAllocation()
    dram: MemoryTechnology = dataclasses.field(default_factory=lambda: get_dram_technology("HBM2E"))
    supports_fp8: bool = False
    supports_fp4: bool = False

    def _logic_scale(self) -> float:
        reference = get_node(REFERENCE_NODE)
        return self.node.area_scale_from(reference)

    def _power_scale(self) -> float:
        reference = get_node(REFERENCE_NODE)
        return self.node.power_scale_from(reference)

    def compute_throughput_fp16(self) -> float:
        """Sustainable FP16 peak throughput under both area and power limits."""
        area_limited = (
            self.budget.area_mm2
            * self.allocation.compute_area_fraction
            * FP16_FLOPS_PER_MM2
            * self._logic_scale()
        )
        power_limited = (
            self.budget.power_watts
            * self.allocation.compute_power_fraction
            * FP16_FLOPS_PER_WATT
            * self._power_scale()
        )
        return min(area_limited, power_limited)

    def l2_capacity(self) -> float:
        """Derived L2 capacity in bytes."""
        sram_scale = 1.0 + (self._logic_scale() - 1.0) * SRAM_SCALING_DISCOUNT
        sram_scale = max(sram_scale, 1.0 / self._logic_scale()) if self._logic_scale() < 1 else sram_scale
        return self.budget.area_mm2 * self.allocation.l2_area_fraction * SRAM_BYTES_PER_MM2 * sram_scale

    def l2_bandwidth(self) -> float:
        """Derived L2 bandwidth in bytes/second."""
        return self.l2_capacity() * L2_BANDWIDTH_PER_BYTE

    def shared_memory(self) -> MemoryLevel:
        """Derived shared-memory/register level sized to feed the compute array."""
        throughput = self.compute_throughput_fp16()
        return MemoryLevel(
            name="shared",
            capacity=20 * MIB,
            bandwidth=max(throughput * SHARED_BW_PER_FLOP, 1 * TBPS),
        )

    def derive_accelerator(self, name: Optional[str] = None, efficiency: float = 0.70) -> AcceleratorSpec:
        """Materialize the coarse-grained :class:`AcceleratorSpec` for this design point."""
        fp16 = self.compute_throughput_fp16()
        peaks = {
            Precision.FP32: fp16 / 8.0,
            Precision.TF32: fp16 / 2.0,
            Precision.FP16: fp16,
            Precision.BF16: fp16,
        }
        if self.supports_fp8:
            peaks[Precision.FP8] = fp16 * 2.0
        if self.supports_fp4:
            peaks[Precision.FP4] = fp16 * 4.0
        shared = self.shared_memory()
        hierarchy = MemoryHierarchy(
            [
                shared,
                MemoryLevel("L2", self.l2_capacity(), self.l2_bandwidth()),
                MemoryLevel("DRAM", self.dram.capacity, self.dram.bandwidth),
            ]
        )
        return AcceleratorSpec(
            name=name or f"uarch-{self.node.name}-{self.dram.name}",
            compute=ComputeSpec(peak_flops=peaks, efficiency=efficiency),
            memory=hierarchy,
            dram_technology=self.dram.name,
            technology_node_nm=self.node.feature_nm,
            tdp_watts=self.budget.power_watts,
            die_area_mm2=self.budget.area_mm2,
        )


def derive_device(
    node: str,
    dram: str = "HBM2E",
    budget: Optional[ResourceBudget] = None,
    allocation: Optional[ResourceAllocation] = None,
    supports_fp8: bool = False,
    supports_fp4: bool = False,
    name: Optional[str] = None,
) -> AcceleratorSpec:
    """One-call helper: derive an accelerator for a node / DRAM technology pair."""
    uarch = MicroArchitecture(
        node=get_node(node),
        budget=budget or ResourceBudget(),
        allocation=allocation or ResourceAllocation(),
        dram=get_dram_technology(dram),
        supports_fp8=supports_fp8,
        supports_fp4=supports_fp4,
    )
    return uarch.derive_accelerator(name=name)
