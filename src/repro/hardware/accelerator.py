"""Accelerator (GPU / TPU / custom device) specifications and catalog.

An :class:`AcceleratorSpec` is the architecture-abstraction-layer view of a
device: sustained compute throughput per precision, a memory hierarchy
(shared memory, L2, DRAM), and bookkeeping fields (technology node, TDP,
die area) used by the design-space exploration.  The catalog encodes the
publicly available coarse-grained figures of the devices the paper studies
(A100, H100, H200, B100, B200) plus a TPU-like entry.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import UnknownHardwareError
from ..units import GB, MIB, TBPS, TFLOPS, PFLOPS
from .compute import ComputeSpec
from .datatypes import Precision
from .memory import (
    MemoryHierarchy,
    MemoryTechnology,
    get_dram_technology,
    make_gpu_hierarchy,
)


@dataclasses.dataclass(frozen=True)
class AcceleratorSpec:
    """Coarse-grained description of one accelerator device.

    Attributes:
        name: Catalog name, e.g. ``"A100-80GB"``.
        compute: Per-precision peak throughput and efficiency.
        memory: The on-device memory hierarchy, innermost level first.
        dram_technology: Name of the DRAM technology feeding the last level.
        technology_node_nm: Logic process node of the compute die, in nm.
        tdp_watts: Board power budget, used by the µArch engine and DSE.
        die_area_mm2: Compute-die area, used by the µArch engine and DSE.
    """

    name: str
    compute: ComputeSpec
    memory: MemoryHierarchy
    dram_technology: str = "HBM2E"
    technology_node_nm: float = 7.0
    tdp_watts: float = 400.0
    die_area_mm2: float = 800.0

    @property
    def dram_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/second."""
        return self.memory.dram.bandwidth

    @property
    def dram_capacity(self) -> float:
        """DRAM capacity in bytes."""
        return self.memory.dram.capacity

    def peak_flops(self, precision: Precision) -> float:
        """Peak matrix throughput for ``precision`` in FLOP/s."""
        return self.compute.peak(precision)

    def sustained_flops(self, precision: Precision) -> float:
        """Sustained (efficiency-adjusted) matrix throughput in FLOP/s."""
        return self.compute.sustained(precision)

    def with_dram(
        self,
        technology: "MemoryTechnology | str",
        name: Optional[str] = None,
        keep_capacity: bool = False,
    ) -> "AcceleratorSpec":
        """Return a copy of this device with a different DRAM technology.

        Used by the memory-technology scaling studies: the compute die and
        on-chip memories stay fixed while the off-chip memory is swapped.

        Args:
            technology: A catalog name or a :class:`MemoryTechnology`.
            name: Optional new device name; defaults to ``<name>-<tech>``.
            keep_capacity: Keep the original DRAM capacity instead of the
                technology's typical capacity.
        """
        tech = technology if isinstance(technology, MemoryTechnology) else get_dram_technology(technology)
        if keep_capacity:
            tech = tech.with_capacity(self.dram_capacity)
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-{tech.name}",
            memory=self.memory.replace_dram(tech),
            dram_technology=tech.name,
        )

    def with_compute_scale(self, factor: float, name: Optional[str] = None) -> "AcceleratorSpec":
        """Return a copy with all compute throughputs scaled by ``factor``."""
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            compute=self.compute.scaled(factor),
        )

    def summary(self) -> Dict[str, float]:
        """Flat summary of the headline numbers, for reports and tables."""
        return {
            "fp16_tflops": self.compute.peak(Precision.FP16) / TFLOPS,
            "dram_bandwidth_tbps": self.dram_bandwidth / TBPS,
            "dram_capacity_gb": self.dram_capacity / GB,
            "l2_capacity_mib": (self.memory.level("L2").capacity / MIB) if self.memory.has_level("L2") else 0.0,
            "tdp_watts": self.tdp_watts,
        }


def _nvidia_a100() -> AcceleratorSpec:
    compute = ComputeSpec(
        peak_flops={
            Precision.FP64: 19.5 * TFLOPS,
            Precision.FP32: 19.5 * TFLOPS,
            Precision.TF32: 156 * TFLOPS,
            Precision.FP16: 312 * TFLOPS,
            Precision.BF16: 312 * TFLOPS,
            Precision.INT8: 624 * TFLOPS,
        },
        efficiency=0.70,
    )
    memory = make_gpu_hierarchy(
        shared_capacity=20 * MIB,
        shared_bandwidth=80 * TBPS,
        l2_capacity=40 * MIB,
        l2_bandwidth=4.8 * TBPS,
        dram_capacity=80 * GB,
        dram_bandwidth=1.935 * TBPS,
    )
    return AcceleratorSpec(
        name="A100-80GB",
        compute=compute,
        memory=memory,
        dram_technology="HBM2E",
        technology_node_nm=7.0,
        tdp_watts=400.0,
        die_area_mm2=826.0,
    )


def _nvidia_h100() -> AcceleratorSpec:
    compute = ComputeSpec(
        peak_flops={
            Precision.FP64: 67 * TFLOPS,
            Precision.FP32: 67 * TFLOPS,
            Precision.TF32: 494.7 * TFLOPS,
            Precision.FP16: 989.4 * TFLOPS,
            Precision.BF16: 989.4 * TFLOPS,
            Precision.FP8: 1978.9 * TFLOPS,
            Precision.INT8: 1978.9 * TFLOPS,
        },
        efficiency=0.70,
    )
    memory = make_gpu_hierarchy(
        shared_capacity=29 * MIB,
        shared_bandwidth=120 * TBPS,
        l2_capacity=50 * MIB,
        l2_bandwidth=7.5 * TBPS,
        dram_capacity=80 * GB,
        dram_bandwidth=3.35 * TBPS,
    )
    return AcceleratorSpec(
        name="H100-SXM",
        compute=compute,
        memory=memory,
        dram_technology="HBM3-H100",
        technology_node_nm=5.0,
        tdp_watts=700.0,
        die_area_mm2=814.0,
    )


def _nvidia_h200() -> AcceleratorSpec:
    base = _nvidia_h100()
    memory = make_gpu_hierarchy(
        shared_capacity=29 * MIB,
        shared_bandwidth=120 * TBPS,
        l2_capacity=50 * MIB,
        l2_bandwidth=7.5 * TBPS,
        dram_capacity=141 * GB,
        dram_bandwidth=4.8 * TBPS,
    )
    return dataclasses.replace(
        base,
        name="H200-SXM",
        memory=memory,
        dram_technology="HBM3E",
        tdp_watts=700.0,
    )


def _nvidia_b100() -> AcceleratorSpec:
    compute = ComputeSpec(
        peak_flops={
            Precision.FP32: 60 * TFLOPS,
            Precision.TF32: 0.9 * PFLOPS,
            Precision.FP16: 1.75 * PFLOPS,
            Precision.BF16: 1.75 * PFLOPS,
            Precision.FP8: 3.5 * PFLOPS,
            Precision.FP4: 7.0 * PFLOPS,
            Precision.INT8: 3.5 * PFLOPS,
        },
        efficiency=0.70,
    )
    memory = make_gpu_hierarchy(
        shared_capacity=40 * MIB,
        shared_bandwidth=160 * TBPS,
        l2_capacity=100 * MIB,
        l2_bandwidth=12 * TBPS,
        dram_capacity=192 * GB,
        dram_bandwidth=8.0 * TBPS,
    )
    return AcceleratorSpec(
        name="B100",
        compute=compute,
        memory=memory,
        dram_technology="HBM3E",
        technology_node_nm=4.0,
        tdp_watts=700.0,
        die_area_mm2=1600.0,
    )


def _nvidia_b200() -> AcceleratorSpec:
    compute = ComputeSpec(
        peak_flops={
            Precision.FP32: 80 * TFLOPS,
            Precision.TF32: 1.12 * PFLOPS,
            Precision.FP16: 2.25 * PFLOPS,
            Precision.BF16: 2.25 * PFLOPS,
            Precision.FP8: 4.5 * PFLOPS,
            Precision.FP4: 9.0 * PFLOPS,
            Precision.INT8: 4.5 * PFLOPS,
        },
        efficiency=0.70,
    )
    memory = make_gpu_hierarchy(
        shared_capacity=40 * MIB,
        shared_bandwidth=160 * TBPS,
        l2_capacity=126 * MIB,
        l2_bandwidth=14 * TBPS,
        dram_capacity=192 * GB,
        dram_bandwidth=8.0 * TBPS,
    )
    return AcceleratorSpec(
        name="B200",
        compute=compute,
        memory=memory,
        dram_technology="HBM3E",
        technology_node_nm=4.0,
        tdp_watts=1000.0,
        die_area_mm2=1600.0,
    )


def _tpu_like() -> AcceleratorSpec:
    """A TPU-v4-like device, demonstrating the non-GPU path of the catalog."""
    compute = ComputeSpec(
        peak_flops={
            Precision.FP32: 30 * TFLOPS,
            Precision.BF16: 275 * TFLOPS,
            Precision.FP16: 275 * TFLOPS,
            Precision.INT8: 550 * TFLOPS,
        },
        efficiency=0.8,
    )
    memory = make_gpu_hierarchy(
        shared_capacity=128 * MIB,
        shared_bandwidth=50 * TBPS,
        l2_capacity=160 * MIB,
        l2_bandwidth=3.7 * TBPS,
        dram_capacity=32 * GB,
        dram_bandwidth=1.2 * TBPS,
    )
    return AcceleratorSpec(
        name="TPUv4-like",
        compute=compute,
        memory=memory,
        dram_technology="HBM2",
        technology_node_nm=7.0,
        tdp_watts=275.0,
        die_area_mm2=600.0,
    )


_CATALOG_BUILDERS = {
    "A100": _nvidia_a100,
    "A100-80GB": _nvidia_a100,
    "H100": _nvidia_h100,
    "H100-SXM": _nvidia_h100,
    "H200": _nvidia_h200,
    "H200-SXM": _nvidia_h200,
    "B100": _nvidia_b100,
    "B200": _nvidia_b200,
    "TPU": _tpu_like,
    "TPUV4": _tpu_like,
}


def get_accelerator(name: str) -> AcceleratorSpec:
    """Look up an accelerator by (case-insensitive) catalog name."""
    key = name.strip().upper()
    if key in _CATALOG_BUILDERS:
        return _CATALOG_BUILDERS[key]()
    raise UnknownHardwareError(
        f"unknown accelerator {name!r}; available: {sorted(set(_CATALOG_BUILDERS))}"
    )


def list_accelerators() -> Dict[str, AcceleratorSpec]:
    """Return a fresh spec for every distinct catalog entry."""
    specs = {}
    for builder in {id(b): b for b in _CATALOG_BUILDERS.values()}.values():
        spec = builder()
        specs[spec.name] = spec
    return specs


def custom_accelerator(
    name: str,
    fp16_tflops: float,
    dram_bandwidth_tbps: float,
    dram_capacity_gb: float,
    l2_capacity_mib: float = 40.0,
    l2_bandwidth_tbps: float = 5.0,
    efficiency: float = 0.70,
    fp8_tflops: Optional[float] = None,
    fp4_tflops: Optional[float] = None,
    technology_node_nm: float = 7.0,
    tdp_watts: float = 500.0,
    die_area_mm2: float = 800.0,
) -> AcceleratorSpec:
    """Build a custom accelerator from headline numbers.

    This is the "direct high-level system description" path of the
    architecture abstraction layer: the user supplies coarse-grained
    quantities instead of low-level technology parameters.
    """
    peaks = {
        Precision.FP32: fp16_tflops * TFLOPS / 8.0,
        Precision.FP16: fp16_tflops * TFLOPS,
        Precision.BF16: fp16_tflops * TFLOPS,
    }
    if fp8_tflops is not None:
        peaks[Precision.FP8] = fp8_tflops * TFLOPS
    if fp4_tflops is not None:
        peaks[Precision.FP4] = fp4_tflops * TFLOPS
    compute = ComputeSpec(peak_flops=peaks, efficiency=efficiency)
    memory = make_gpu_hierarchy(
        shared_capacity=20 * MIB,
        shared_bandwidth=max(40.0, fp16_tflops / 4) * TBPS,
        l2_capacity=l2_capacity_mib * MIB,
        l2_bandwidth=l2_bandwidth_tbps * TBPS,
        dram_capacity=dram_capacity_gb * GB,
        dram_bandwidth=dram_bandwidth_tbps * TBPS,
    )
    return AcceleratorSpec(
        name=name,
        compute=compute,
        memory=memory,
        dram_technology="custom",
        technology_node_nm=technology_node_nm,
        tdp_watts=tdp_watts,
        die_area_mm2=die_area_mm2,
    )
