"""Cluster/system-level description and preset system builders.

A :class:`SystemSpec` is what the performance-prediction engine consumes: it
combines an accelerator, the intra-node fabric, the inter-node fabric, and
the total device count.  Preset builders reproduce the clusters the paper
studies (A100-HDR, H100-NDR, H100-NVS, H200-NVS, B200-NDR, B200-NVS).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ConfigurationError, UnknownHardwareError
from .accelerator import AcceleratorSpec, get_accelerator
from .network import Interconnect, get_interconnect
from .node import NodeSpec


@dataclasses.dataclass(frozen=True)
class SystemSpec:
    """A full multi-node system.

    Attributes:
        name: Human-readable system name (used in reports and figures).
        node: Per-node description (device spec, count, intra-node fabric).
        inter_node_fabric: Fabric between nodes (InfiniBand generation or NVS).
        num_devices: Total number of accelerators in the system.
    """

    name: str
    node: NodeSpec
    inter_node_fabric: Interconnect
    num_devices: int

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ConfigurationError("num_devices must be at least 1")
        if self.num_devices % self.node.devices_per_node not in (0, self.num_devices):
            # Allow systems smaller than one full node (e.g. 2-GPU inference boxes).
            raise ConfigurationError(
                f"num_devices ({self.num_devices}) must be a multiple of devices_per_node "
                f"({self.node.devices_per_node}) or smaller than one node"
            )

    @property
    def accelerator(self) -> AcceleratorSpec:
        """The per-device accelerator spec."""
        return self.node.accelerator

    @property
    def devices_per_node(self) -> int:
        """Accelerators per node."""
        return self.node.devices_per_node

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the system (at least 1)."""
        return max(1, self.num_devices // self.node.devices_per_node)

    @property
    def intra_node_fabric(self) -> Interconnect:
        """Fabric between the devices of one node."""
        return self.node.intra_node_fabric

    def fabric_for_group(self, group_size: int) -> Interconnect:
        """Return the fabric a communication group of ``group_size`` devices uses.

        Groups that fit inside one node (e.g. tensor parallelism) use the
        intra-node fabric; larger groups cross node boundaries and are
        limited by the inter-node fabric.
        """
        if group_size <= self.node.devices_per_node:
            return self.node.intra_node_fabric
        return self.inter_node_fabric

    def with_accelerator(self, accelerator: AcceleratorSpec, name: Optional[str] = None) -> "SystemSpec":
        """Return a copy of this system with every device replaced."""
        node = dataclasses.replace(self.node, accelerator=accelerator)
        return dataclasses.replace(self, name=name or self.name, node=node)

    def with_inter_node_fabric(self, fabric: Interconnect, name: Optional[str] = None) -> "SystemSpec":
        """Return a copy with a different inter-node fabric."""
        return dataclasses.replace(self, name=name or self.name, inter_node_fabric=fabric)

    def with_num_devices(self, num_devices: int) -> "SystemSpec":
        """Return a copy with a different total device count."""
        return dataclasses.replace(self, num_devices=num_devices)

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports."""
        return {
            "name": self.name,
            "accelerator": self.accelerator.name,
            "num_devices": self.num_devices,
            "devices_per_node": self.devices_per_node,
            "intra_node_fabric": self.intra_node_fabric.name,
            "inter_node_fabric": self.inter_node_fabric.name,
        }


def build_system(
    accelerator: "AcceleratorSpec | str",
    num_devices: int,
    intra_node: "Interconnect | str" = "NVLink3",
    inter_node: "Interconnect | str" = "HDR-IB",
    devices_per_node: int = 8,
    name: Optional[str] = None,
) -> SystemSpec:
    """Assemble a :class:`SystemSpec` from catalog names or explicit specs."""
    device = accelerator if isinstance(accelerator, AcceleratorSpec) else get_accelerator(accelerator)
    intra = intra_node if isinstance(intra_node, Interconnect) else get_interconnect(intra_node)
    inter = inter_node if isinstance(inter_node, Interconnect) else get_interconnect(inter_node)
    per_node = min(devices_per_node, num_devices)
    node = NodeSpec(accelerator=device, devices_per_node=per_node, intra_node_fabric=intra)
    system_name = name or f"{device.name}x{num_devices}-{inter.name}"
    return SystemSpec(name=system_name, node=node, inter_node_fabric=inter, num_devices=num_devices)


# ---------------------------------------------------------------------------
# Preset clusters used in the paper's GPU-generation scaling study (Fig. 5).
# ---------------------------------------------------------------------------

_PRESET_RECIPES = {
    # name: (accelerator, intra_node, inter_node)
    "A100-HDR": ("A100", "NVLink3", "HDR-IB"),
    "A100-NVL": ("A100", "NVLink3", "HDR-IB"),
    "H100-NDR": ("H100", "NVLink4", "NDR-IB"),
    "H100-NVS": ("H100", "NVLink4", "NVS"),
    "H200-NDR": ("H200", "NVLink4", "NDR-IB"),
    "H200-NVS": ("H200", "NVLink4", "NVS"),
    "B200-NDR": ("B200", "NVLink5", "NDR-IB"),
    "B200-NVS": ("B200", "NVLink5", "NVS-B200"),
}


def preset_cluster(name: str, num_devices: int, devices_per_node: int = 8) -> SystemSpec:
    """Build one of the named clusters from the GPU-generation scaling study."""
    key = name.strip().upper().replace("_", "-")
    # Accept the paper's "-L" suffix (large-batch variant) transparently.
    if key.endswith("-L"):
        key = key[:-2]
    if key not in _PRESET_RECIPES:
        raise UnknownHardwareError(f"unknown preset cluster {name!r}; available: {sorted(_PRESET_RECIPES)}")
    accelerator, intra, inter = _PRESET_RECIPES[key]
    return build_system(
        accelerator,
        num_devices=num_devices,
        intra_node=intra,
        inter_node=inter,
        devices_per_node=devices_per_node,
        name=name,
    )
