"""Memory technologies and the on-device memory hierarchy.

Two complementary abstractions live here:

* :class:`MemoryTechnology` describes an *off-chip* DRAM technology (HBM2,
  HBM3e, GDDR6, ...) by its peak bandwidth and typical per-stack capacity.
  The paper's memory-technology scaling studies (Figs. 6 and 9) sweep over
  these entries while keeping the compute die fixed.
* :class:`MemoryLevel` / :class:`MemoryHierarchy` describe the on-device
  hierarchy (shared memory / L1, L2, DRAM) that the hierarchical roofline
  model walks when predicting GEMM time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional

from ..errors import ConfigurationError, UnknownHardwareError
from ..units import GB, GBPS, KIB, MIB, TBPS


@dataclasses.dataclass(frozen=True)
class MemoryTechnology:
    """An off-chip DRAM technology.

    Attributes:
        name: Catalog name, e.g. ``"HBM3"``.
        bandwidth: Peak device bandwidth in bytes/second.
        capacity: Typical per-device capacity in bytes.
        generation: Free-form generation label used for ordering in sweeps.
    """

    name: str
    bandwidth: float
    capacity: float
    generation: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.capacity <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")

    def with_capacity(self, capacity: float) -> "MemoryTechnology":
        """Return a copy of this technology with a different capacity."""
        return dataclasses.replace(self, capacity=capacity)

    def scaled(self, bandwidth_factor: float, name: Optional[str] = None) -> "MemoryTechnology":
        """Return a copy with bandwidth scaled by ``bandwidth_factor``."""
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-x{bandwidth_factor:g}",
            bandwidth=self.bandwidth * bandwidth_factor,
        )


@dataclasses.dataclass(frozen=True)
class MemoryLevel:
    """One level of the on-device memory hierarchy.

    Attributes:
        name: Level name (``"shared"``, ``"L2"``, ``"DRAM"``).
        capacity: Usable capacity of the level in bytes.
        bandwidth: Peak bandwidth to/from the level in bytes/second.
        utilization: Default achievable fraction of the peak bandwidth.
    """

    name: str
    capacity: float
    bandwidth: float
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.bandwidth <= 0:
            raise ConfigurationError(f"memory level {self.name}: capacity and bandwidth must be positive")
        if not 0 < self.utilization <= 1:
            raise ConfigurationError(f"memory level {self.name}: utilization must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth after applying the default utilization factor."""
        return self.bandwidth * self.utilization


class MemoryHierarchy:
    """Ordered collection of memory levels, innermost (fastest) first.

    The hierarchical roofline model iterates over the levels from the
    innermost one outwards; the conventional order is
    ``[shared/L1, L2, DRAM]``.
    """

    def __init__(self, levels: List[MemoryLevel]):
        if not levels:
            raise ConfigurationError("memory hierarchy needs at least one level")
        names = [level.name for level in levels]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate memory level names: {names}")
        self._levels = list(levels)

    def __iter__(self) -> Iterator[MemoryLevel]:
        return iter(self._levels)

    def __len__(self) -> int:
        return len(self._levels)

    @property
    def levels(self) -> List[MemoryLevel]:
        """The levels, innermost first."""
        return list(self._levels)

    def level(self, name: str) -> MemoryLevel:
        """Return the level called ``name``."""
        for lvl in self._levels:
            if lvl.name == name:
                return lvl
        raise UnknownHardwareError(f"no memory level named {name!r}; have {[level.name for level in self._levels]}")

    def has_level(self, name: str) -> bool:
        """Whether a level called ``name`` exists."""
        return any(lvl.name == name for lvl in self._levels)

    @property
    def dram(self) -> MemoryLevel:
        """The outermost level (device DRAM)."""
        return self._levels[-1]

    @property
    def innermost(self) -> MemoryLevel:
        """The innermost (fastest, smallest) level."""
        return self._levels[0]

    def replace_dram(self, technology: MemoryTechnology, utilization: Optional[float] = None) -> "MemoryHierarchy":
        """Return a new hierarchy whose DRAM level uses ``technology``.

        This implements the paper's memory-technology sweeps: the on-chip
        levels are preserved and only the off-chip bandwidth/capacity change.
        """
        old = self.dram
        new_dram = MemoryLevel(
            name=old.name,
            capacity=technology.capacity,
            bandwidth=technology.bandwidth,
            utilization=old.utilization if utilization is None else utilization,
        )
        return MemoryHierarchy(self._levels[:-1] + [new_dram])

    def scaled(self, bandwidth_factor: float = 1.0, capacity_factor: float = 1.0) -> "MemoryHierarchy":
        """Return a hierarchy with every level's bandwidth/capacity scaled."""
        return MemoryHierarchy(
            [
                dataclasses.replace(
                    lvl,
                    bandwidth=lvl.bandwidth * bandwidth_factor,
                    capacity=lvl.capacity * capacity_factor,
                )
                for lvl in self._levels
            ]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryHierarchy):
            return NotImplemented
        return self._levels == other._levels

    def __hash__(self) -> int:
        # Value-based hash (the levels are frozen dataclasses) so accelerator
        # and system specs that embed a hierarchy can key scenario caches.
        return hash(tuple(self._levels))

    def __repr__(self) -> str:
        parts = ", ".join(f"{lvl.name}={lvl.bandwidth / TBPS:.2f}TB/s" for lvl in self._levels)
        return f"MemoryHierarchy({parts})"


def make_gpu_hierarchy(
    shared_capacity: float,
    shared_bandwidth: float,
    l2_capacity: float,
    l2_bandwidth: float,
    dram_capacity: float,
    dram_bandwidth: float,
    dram_utilization: float = 1.0,
) -> MemoryHierarchy:
    """Convenience constructor for the common three-level GPU hierarchy."""
    return MemoryHierarchy(
        [
            MemoryLevel("shared", shared_capacity, shared_bandwidth),
            MemoryLevel("L2", l2_capacity, l2_bandwidth),
            MemoryLevel("DRAM", dram_capacity, dram_bandwidth, utilization=dram_utilization),
        ]
    )


# ---------------------------------------------------------------------------
# DRAM technology catalog (bandwidth values follow the paper's Sections 5-6).
# ---------------------------------------------------------------------------

DRAM_TECHNOLOGIES: Dict[str, MemoryTechnology] = {
    "GDDR6": MemoryTechnology("GDDR6", bandwidth=600 * GBPS, capacity=48 * GB, generation=0),
    "HBM2": MemoryTechnology("HBM2", bandwidth=1.0 * TBPS, capacity=40 * GB, generation=1),
    "HBM2E": MemoryTechnology("HBM2E", bandwidth=1.9 * TBPS, capacity=80 * GB, generation=2),
    # The paper uses 2.6 TB/s for HBM3 in the technology-node study (Fig. 6) and the
    # H100's 3.35 TB/s product figure in the validation section; both are catalogued.
    "HBM3": MemoryTechnology("HBM3", bandwidth=2.6 * TBPS, capacity=96 * GB, generation=3),
    "HBM3-H100": MemoryTechnology("HBM3-H100", bandwidth=3.35 * TBPS, capacity=80 * GB, generation=3),
    "HBM3E": MemoryTechnology("HBM3E", bandwidth=4.8 * TBPS, capacity=141 * GB, generation=4),
    "HBM4": MemoryTechnology("HBM4", bandwidth=3.3 * TBPS, capacity=160 * GB, generation=5),
    "HBMX": MemoryTechnology("HBMX", bandwidth=6.8 * TBPS, capacity=192 * GB, generation=6),
}

#: Ordering used by the inference memory-technology sweep (Fig. 9).
INFERENCE_MEMORY_SWEEP = ["GDDR6", "HBM2", "HBM2E", "HBM3", "HBM3E", "HBMX"]

#: Ordering used by the training technology-node sweep (Fig. 6).
TRAINING_MEMORY_SWEEP = ["HBM2", "HBM2E", "HBM3", "HBM4"]


def get_dram_technology(name: str) -> MemoryTechnology:
    """Look up a DRAM technology by (case-insensitive) name."""
    key = name.strip().upper().replace("GDR6", "GDDR6")
    if key in DRAM_TECHNOLOGIES:
        return DRAM_TECHNOLOGIES[key]
    raise UnknownHardwareError(
        f"unknown DRAM technology {name!r}; available: {sorted(DRAM_TECHNOLOGIES)}"
    )


# Commonly reused on-chip sizes for NVIDIA-like devices.
DEFAULT_SHARED_CAPACITY = 20 * MIB
DEFAULT_SHARED_BANDWIDTH = 80 * TBPS
DEFAULT_L2_CAPACITY = 40 * MIB
DEFAULT_L2_BANDWIDTH = 6 * TBPS
DEFAULT_TILE_GRANULARITY = 128 * KIB
