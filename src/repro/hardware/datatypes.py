"""Numeric precisions used by LLM training and inference.

The performance model needs two things from a precision: how many bytes one
element occupies (for memory traffic and footprints) and a stable name so
hardware catalogs can declare per-precision compute throughput (e.g. the
H100 FP8 transformer engine or the B200 FP4 path).
"""

from __future__ import annotations

import enum


class Precision(enum.Enum):
    """Numeric formats supported by the modeled accelerators."""

    FP64 = "fp64"
    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"
    BF16 = "bf16"
    FP8 = "fp8"
    FP4 = "fp4"
    INT8 = "int8"
    INT4 = "int4"

    @property
    def bytes_per_element(self) -> float:
        """Number of bytes one element of this precision occupies."""
        return _BYTES_PER_ELEMENT[self]

    @property
    def bits(self) -> int:
        """Width of the format in bits."""
        return int(_BYTES_PER_ELEMENT[self] * 8)

    @classmethod
    def parse(cls, value: "Precision | str") -> "Precision":
        """Return a :class:`Precision` from either an enum member or its name.

        Accepts both the enum value (``"fp16"``) and the member name
        (``"FP16"``), case-insensitively.
        """
        if isinstance(value, Precision):
            return value
        text = str(value).strip().lower()
        for member in cls:
            if member.value == text or member.name.lower() == text:
                return member
        raise ValueError(f"unknown precision: {value!r}")


_BYTES_PER_ELEMENT = {
    Precision.FP64: 8.0,
    Precision.FP32: 4.0,
    Precision.TF32: 4.0,
    Precision.FP16: 2.0,
    Precision.BF16: 2.0,
    Precision.FP8: 1.0,
    Precision.FP4: 0.5,
    Precision.INT8: 1.0,
    Precision.INT4: 0.5,
}

#: Precision used for optimizer master weights / states in mixed-precision training.
MASTER_PRECISION = Precision.FP32
