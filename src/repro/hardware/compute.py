"""Compute-engine description: per-precision peak throughput and efficiency.

An accelerator's compute capability is a mapping from :class:`Precision`
to peak matrix-engine throughput (FLOP/s), plus a single achievable-
efficiency factor that captures the gap between the peak and what dense
GEMM kernels sustain in practice (roughly the cuBLAS efficiency).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError
from .datatypes import Precision


@dataclasses.dataclass(frozen=True)
class ComputeSpec:
    """Peak compute throughput of a device.

    Attributes:
        peak_flops: Mapping from precision to peak dense matrix throughput
            in FLOP/s.
        efficiency: Fraction of the peak that well-shaped GEMMs achieve.
        vector_flops: Optional peak throughput of the vector/SIMT units used
            by normalization and element-wise kernels; defaults to a fraction
            of the FP32 matrix peak when not given.
    """

    peak_flops: Mapping[Precision, float]
    efficiency: float = 0.85
    vector_flops: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.peak_flops:
            raise ConfigurationError("ComputeSpec needs at least one precision entry")
        for precision, flops in self.peak_flops.items():
            if flops <= 0:
                raise ConfigurationError(f"peak throughput for {precision} must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError("efficiency must be in (0, 1]")
        object.__setattr__(self, "peak_flops", dict(self.peak_flops))

    def __hash__(self) -> int:
        # The generated hash of a frozen dataclass cannot handle the
        # peak_flops mapping; hash a canonically ordered tuple instead so
        # equal specs (dict equality) hash equally and the spec can key
        # engine/result caches.
        peaks = tuple(sorted((p.value, f) for p, f in self.peak_flops.items()))
        return hash((peaks, self.efficiency, self.vector_flops))

    def supports(self, precision: Precision) -> bool:
        """Whether the device has a matrix path for ``precision``."""
        return precision in self.peak_flops

    def peak(self, precision: Precision) -> float:
        """Peak matrix throughput for ``precision`` in FLOP/s.

        If the exact precision is missing, falls back to the closest wider
        supported format (e.g. BF16 falls back to FP16 and vice versa),
        mirroring how frameworks run unsupported formats on wider units.
        """
        precision = Precision.parse(precision)
        if precision in self.peak_flops:
            return self.peak_flops[precision]
        fallback = _FALLBACK_ORDER.get(precision, [])
        for candidate in fallback:
            if candidate in self.peak_flops:
                return self.peak_flops[candidate]
        raise ConfigurationError(
            f"precision {precision} is not supported and no fallback exists; "
            f"supported: {sorted(p.value for p in self.peak_flops)}"
        )

    def sustained(self, precision: Precision) -> float:
        """Sustained matrix throughput (peak x efficiency) in FLOP/s."""
        return self.peak(precision) * self.efficiency

    @property
    def vector_throughput(self) -> float:
        """Sustained throughput of the vector units in FLOP/s."""
        if self.vector_flops is not None:
            return self.vector_flops * self.efficiency
        # Vector units are typically ~1/8 of the FP16 tensor-core throughput.
        reference = self.peak(Precision.FP16) if self.supports(Precision.FP16) else max(self.peak_flops.values())
        return reference * 0.125 * self.efficiency

    def scaled(self, factor: float, efficiency: Optional[float] = None) -> "ComputeSpec":
        """Return a copy with all peak throughputs scaled by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return ComputeSpec(
            peak_flops={p: f * factor for p, f in self.peak_flops.items()},
            efficiency=self.efficiency if efficiency is None else efficiency,
            vector_flops=None if self.vector_flops is None else self.vector_flops * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view keyed by precision value, useful for reports."""
        return {p.value: f for p, f in self.peak_flops.items()}


_FALLBACK_ORDER = {
    Precision.BF16: [Precision.FP16, Precision.FP32],
    Precision.FP16: [Precision.BF16, Precision.FP32],
    Precision.TF32: [Precision.FP32, Precision.FP16],
    Precision.FP8: [Precision.FP16, Precision.BF16],
    Precision.INT8: [Precision.FP8, Precision.FP16],
    Precision.FP4: [Precision.FP8, Precision.FP16],
    Precision.INT4: [Precision.FP4, Precision.INT8, Precision.FP16],
    Precision.FP32: [Precision.TF32, Precision.FP16],
    Precision.FP64: [Precision.FP32],
}
