"""Logic technology nodes and the scaling assumptions used by the DSE.

The paper explores seven logic nodes, N12 down to N1, under an
iso-performance scaling assumption between consecutive nodes with scaling
factors of 1.8x for area and 1.3x for power (Section 5.3, following
Stillmaker & Baas and the DeepFlow methodology).  In other words, moving
one node ahead lets the same logic fit in 1/1.8 of the area and burn 1/1.3
of the power; equivalently, under a fixed area and power budget the
achievable compute density grows by 1.8x per step while the achievable
performance per watt grows by 1.3x per step.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..errors import UnknownHardwareError

#: Area shrink factor between two consecutive technology nodes.
AREA_SCALING_PER_NODE = 1.8
#: Power reduction factor between two consecutive technology nodes.
POWER_SCALING_PER_NODE = 1.3

#: Canonical ordering of the nodes the paper sweeps (oldest to newest).
NODE_ORDER: List[str] = ["N12", "N10", "N7", "N5", "N3", "N2", "N1"]


@dataclasses.dataclass(frozen=True)
class TechnologyNode:
    """One logic process node.

    Attributes:
        name: Node label, e.g. ``"N7"``.
        feature_nm: Nominal feature size in nanometres.
        index: Position in :data:`NODE_ORDER` (0 = N12).
    """

    name: str
    feature_nm: float
    index: int

    def steps_from(self, other: "TechnologyNode") -> int:
        """Number of node transitions from ``other`` to this node (can be negative)."""
        return self.index - other.index

    def area_scale_from(self, other: "TechnologyNode") -> float:
        """Compute-density improvement relative to ``other``.

        Under iso-performance scaling, the same logic block occupies
        ``1/1.8`` of the area per node step, so per-mm2 compute density
        grows by 1.8x per step.
        """
        return AREA_SCALING_PER_NODE ** self.steps_from(other)

    def power_scale_from(self, other: "TechnologyNode") -> float:
        """Energy-efficiency improvement (performance per watt) relative to ``other``."""
        return POWER_SCALING_PER_NODE ** self.steps_from(other)


_NODES: Dict[str, TechnologyNode] = {
    name: TechnologyNode(name=name, feature_nm=feature, index=index)
    for index, (name, feature) in enumerate(
        [("N12", 12.0), ("N10", 10.0), ("N7", 7.0), ("N5", 5.0), ("N3", 3.0), ("N2", 2.0), ("N1", 1.0)]
    )
}


def get_node(name: str) -> TechnologyNode:
    """Look up a technology node by name (``"N7"``) or feature size (``7``)."""
    if isinstance(name, (int, float)):
        name = f"N{int(name)}"
    key = str(name).strip().upper()
    if not key.startswith("N"):
        key = f"N{key}"
    if key in _NODES:
        return _NODES[key]
    raise UnknownHardwareError(f"unknown technology node {name!r}; available: {NODE_ORDER}")


def all_nodes() -> List[TechnologyNode]:
    """All catalogued nodes, oldest (N12) first."""
    return [_NODES[name] for name in NODE_ORDER]


def scaling_factors(reference: str, target: str) -> Dict[str, float]:
    """Area-density and power-efficiency factors going from ``reference`` to ``target``."""
    ref = get_node(reference)
    tgt = get_node(target)
    return {
        "area_density": tgt.area_scale_from(ref),
        "power_efficiency": tgt.power_scale_from(ref),
        "steps": tgt.steps_from(ref),
    }
