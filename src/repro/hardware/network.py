"""Interconnect technologies for intra-node and inter-node communication.

The collective model only needs three quantities per fabric: the per-device
(uni-directional) bandwidth, the per-hop latency, and a default bandwidth
utilization factor.  Catalogs cover NVLink generations, the NVLink Switch
system, and the InfiniBand generations used by the paper's case studies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ConfigurationError, UnknownHardwareError
from ..units import GBPS, MICROSECOND


@dataclasses.dataclass(frozen=True)
class Interconnect:
    """A point-to-point or switched fabric between devices or nodes.

    Attributes:
        name: Catalog name, e.g. ``"NVLink4"`` or ``"NDR-IB"``.
        bandwidth: Achievable uni-directional bandwidth, bytes/s.  For
            per-device fabrics (NVLink, NVS) this is the bandwidth each
            device sees; for node-level fabrics (InfiniBand NIC aggregates,
            the paper's "HDR (200 GB/s)" style figures) it is the bandwidth
            of the whole node, shared by its devices (see ``per_device``).
        latency: Per-message latency in seconds (link + software stack).
        scope: Either ``"intra_node"`` or ``"inter_node"``; informational.
        utilization: Default fraction of the peak bandwidth that the
            collective model assumes for large transfers.
        per_device: Whether ``bandwidth`` is already a per-device figure.
            When False, the collective model divides it by the number of
            devices per node to get the per-device share.
    """

    name: str
    bandwidth: float
    latency: float
    scope: str = "intra_node"
    utilization: float = 1.0
    per_device: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: latency must be non-negative")
        if not 0 < self.utilization <= 1:
            raise ConfigurationError(f"{self.name}: utilization must be in (0, 1]")
        if self.scope not in ("intra_node", "inter_node"):
            raise ConfigurationError(f"{self.name}: scope must be intra_node or inter_node")

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth after the default utilization factor."""
        return self.bandwidth * self.utilization

    def scaled(
        self,
        bandwidth_factor: float = 1.0,
        latency_factor: float = 1.0,
        name: Optional[str] = None,
    ) -> "Interconnect":
        """Return a copy with scaled bandwidth and/or latency."""
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-scaled",
            bandwidth=self.bandwidth * bandwidth_factor,
            latency=self.latency * latency_factor,
        )

    def with_utilization(self, utilization: float) -> "Interconnect":
        """Return a copy with a different default utilization factor."""
        return dataclasses.replace(self, utilization=utilization)


# ---------------------------------------------------------------------------
# Catalog.  Bandwidths are the per-GPU uni-directional figures the paper
# quotes (e.g. "HDR InfiniBand (200 GB/s)", "NVLink Switch system").
# ---------------------------------------------------------------------------

INTERCONNECTS: Dict[str, Interconnect] = {
    # Intra-node fabrics -----------------------------------------------------
    "PCIe4": Interconnect("PCIe4", bandwidth=32 * GBPS, latency=5 * MICROSECOND, scope="intra_node"),
    "PCIe5": Interconnect("PCIe5", bandwidth=64 * GBPS, latency=5 * MICROSECOND, scope="intra_node"),
    # NVLink latencies are effective per-hop collective latencies (link plus the
    # per-step protocol cost NCCL pays), calibrated against the small-message
    # all-reduce times observed in the inference validation (Table 2).
    "NVLink3": Interconnect("NVLink3", bandwidth=300 * GBPS, latency=5.0 * MICROSECOND, scope="intra_node"),
    "NVLink4": Interconnect("NVLink4", bandwidth=450 * GBPS, latency=4.0 * MICROSECOND, scope="intra_node"),
    "NVLink5": Interconnect("NVLink5", bandwidth=900 * GBPS, latency=3.5 * MICROSECOND, scope="intra_node"),
    # Inter-node fabrics.  The InfiniBand figures follow the paper's usage
    # ("HDR InfiniBand network (200 GB/s)"), i.e. the aggregate NIC bandwidth
    # of one node, shared by that node's GPUs (per_device=False).
    "HDR-IB": Interconnect("HDR-IB", bandwidth=200 * GBPS, latency=6 * MICROSECOND, scope="inter_node", per_device=False),
    "NDR-IB": Interconnect("NDR-IB", bandwidth=400 * GBPS, latency=5 * MICROSECOND, scope="inter_node", per_device=False),
    "XDR-IB": Interconnect("XDR-IB", bandwidth=800 * GBPS, latency=5 * MICROSECOND, scope="inter_node", per_device=False),
    # NVLink Switch system: inter-node networking at intra-node per-GPU speed.
    "NVS": Interconnect("NVS", bandwidth=900 * GBPS, latency=2.5 * MICROSECOND, scope="inter_node"),
    "NVS-B200": Interconnect("NVS-B200", bandwidth=1800 * GBPS, latency=2.5 * MICROSECOND, scope="inter_node"),
    # Scale-out variants used in the technology-node scaling study (Fig. 6):
    # the paper sweeps 100 / 200 / 400 GB/s node-level inter-node bandwidth.
    "NDR-x8": Interconnect("NDR-x8", bandwidth=100 * GBPS, latency=5 * MICROSECOND, scope="inter_node", per_device=False),
    "XDR-x8": Interconnect("XDR-x8", bandwidth=200 * GBPS, latency=5 * MICROSECOND, scope="inter_node", per_device=False),
    "GDR-x8": Interconnect("GDR-x8", bandwidth=400 * GBPS, latency=5 * MICROSECOND, scope="inter_node", per_device=False),
}


def get_interconnect(name: str) -> Interconnect:
    """Look up an interconnect by (case-insensitive) name."""
    key = name.strip()
    for candidate in (key, key.upper(), key.title()):
        if candidate in INTERCONNECTS:
            return INTERCONNECTS[candidate]
    # Final pass: case-insensitive comparison against catalog keys.
    lowered = key.lower()
    for catalog_name, interconnect in INTERCONNECTS.items():
        if catalog_name.lower() == lowered:
            return interconnect
    raise UnknownHardwareError(
        f"unknown interconnect {name!r}; available: {sorted(INTERCONNECTS)}"
    )


def custom_interconnect(
    name: str,
    bandwidth: float,
    latency: float = 5 * MICROSECOND,
    scope: str = "inter_node",
    utilization: float = 1.0,
) -> Interconnect:
    """Create an interconnect that is not in the catalog (for DSE sweeps)."""
    return Interconnect(name=name, bandwidth=bandwidth, latency=latency, scope=scope, utilization=utilization)
