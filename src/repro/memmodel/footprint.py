"""Memory-footprint breakdowns for training and inference (paper Sections 3.3, 3.5, 5.1).

Training memory per device consists of model parameters, gradients, optimizer
states, and activations; the mix depends on the parallelism mapping and the
activation-recomputation strategy.  Inference memory consists of the weights
and the KV-cache, whose size the paper gives as

    KV bytes = 2 * batch * context * precision_bytes * layers * embedding_dim

(the factor 2 covers the key and value tensors; for grouped-query-attention
models the embedding dimension is replaced by the KV-head width).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ConfigurationError, MemoryCapacityError
from ..hardware.datatypes import MASTER_PRECISION, Precision
from ..models.transformer import TransformerConfig
from ..parallelism.config import ParallelismConfig
from ..parallelism.megatron import TensorParallelShard
from ..parallelism.pipeline import PipelineSchedule
from .activations import ActivationModel, RecomputeStrategy

#: Adam keeps a first and a second moment per master weight.
ADAM_STATES_PER_PARAMETER = 2


@dataclasses.dataclass(frozen=True)
class TrainingMemoryBreakdown:
    """Per-device training memory footprint, in bytes.

    Attributes:
        parameter_bytes: Model weights at the training precision.
        gradient_bytes: Gradient buffer at the training precision.
        optimizer_bytes: Master weights plus Adam moments (FP32).
        activation_bytes: Stored activations under the chosen strategy.
    """

    parameter_bytes: float
    gradient_bytes: float
    optimizer_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total per-device memory footprint."""
        return self.parameter_bytes + self.gradient_bytes + self.optimizer_bytes + self.activation_bytes

    @property
    def model_state_bytes(self) -> float:
        """Parameters + gradients + optimizer states (everything but activations)."""
        return self.parameter_bytes + self.gradient_bytes + self.optimizer_bytes

    def fits(self, capacity_bytes: float) -> bool:
        """Whether the footprint fits into ``capacity_bytes`` of device memory."""
        return self.total_bytes <= capacity_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view, in bytes."""
        return {
            "parameters": self.parameter_bytes,
            "gradients": self.gradient_bytes,
            "optimizer": self.optimizer_bytes,
            "activations": self.activation_bytes,
            "total": self.total_bytes,
        }

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe dict view (field names, in bytes)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TrainingMemoryBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(**{field.name: data[field.name] for field in dataclasses.fields(cls)})


@dataclasses.dataclass(frozen=True)
class InferenceMemoryBreakdown:
    """Per-device inference memory footprint, in bytes."""

    weight_bytes: float
    kv_cache_bytes: float
    activation_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Total per-device memory footprint."""
        return self.weight_bytes + self.kv_cache_bytes + self.activation_bytes

    def fits(self, capacity_bytes: float) -> bool:
        """Whether the footprint fits into ``capacity_bytes`` of device memory."""
        return self.total_bytes <= capacity_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view, in bytes."""
        return {
            "weights": self.weight_bytes,
            "kv_cache": self.kv_cache_bytes,
            "activations": self.activation_bytes,
            "total": self.total_bytes,
        }

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe dict view (field names, in bytes)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "InferenceMemoryBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(**{field.name: data[field.name] for field in dataclasses.fields(cls)})


def kv_cache_bytes(
    model: TransformerConfig,
    batch_size: int,
    context_len: int,
    precision: Precision = Precision.FP16,
    tensor_parallel: int = 1,
) -> float:
    """KV-cache size per device (paper Section 3.5).

    ``2 x batch x context x precision x layers x kv_width / TP`` where the KV
    width is the full embedding dimension for standard multi-head attention
    and ``num_kv_heads x head_dim`` for grouped-query attention.
    """
    if batch_size < 1 or context_len < 0 or tensor_parallel < 1:
        raise ConfigurationError("batch_size, context_len and tensor_parallel must be valid")
    kv_width = model.num_kv_heads * model.head_dim
    total = 2.0 * batch_size * context_len * precision.bytes_per_element * model.num_layers * kv_width
    return total / tensor_parallel


def model_weight_bytes(
    model: TransformerConfig,
    precision: Precision = Precision.FP16,
    tensor_parallel: int = 1,
    pipeline_parallel: int = 1,
) -> float:
    """Weight bytes per device under TP/PP sharding."""
    shard = TensorParallelShard(model=model, tensor_parallel=tensor_parallel)
    layers = model.num_layers / pipeline_parallel
    embedding = shard.embedding_parameters if pipeline_parallel == 1 else shard.embedding_parameters / 2.0
    params = layers * shard.parameters_per_layer + embedding
    return params * precision.bytes_per_element


def training_memory_breakdown(
    model: TransformerConfig,
    parallelism: ParallelismConfig,
    global_batch_size: int,
    seq_len: Optional[int] = None,
    precision: Precision = Precision.FP16,
    strategy: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
    in_flight_microbatches: Optional[int] = None,
) -> TrainingMemoryBreakdown:
    """Per-device training memory breakdown for a parallelism configuration.

    Args:
        model: The transformer architecture.
        parallelism: The DP/TP/PP/SP configuration.
        global_batch_size: Global batch size in sequences.
        seq_len: Sequence length (defaults to the model's maximum).
        precision: Training precision of weights/gradients/activations.
        strategy: Activation recomputation strategy.
        in_flight_microbatches: Number of micro-batches whose activations are
            simultaneously alive on the busiest (first) pipeline stage.
            Defaults to the value implied by the pipeline schedule.
    """
    parallelism.validate_for_model(model)
    sequence_length = model.max_seq_len if seq_len is None else seq_len
    layers_per_stage = parallelism.layers_per_stage(model)

    shard = TensorParallelShard(model=model, tensor_parallel=parallelism.tensor_parallel)
    include_embedding = parallelism.pipeline_parallel == 1
    params_per_device = layers_per_stage * shard.parameters_per_layer
    if include_embedding:
        params_per_device += shard.embedding_parameters

    parameter_bytes = params_per_device * precision.bytes_per_element
    gradient_bytes = params_per_device * precision.bytes_per_element
    optimizer_bytes = params_per_device * MASTER_PRECISION.bytes_per_element * (1 + ADAM_STATES_PER_PARAMETER)

    activation_model = ActivationModel(
        model=model,
        micro_batch=parallelism.micro_batch_size,
        seq_len=sequence_length,
        tensor_parallel=parallelism.tensor_parallel,
        sequence_parallel=parallelism.sequence_parallel,
        precision=precision,
    )
    if in_flight_microbatches is None:
        schedule = PipelineSchedule(
            pipeline_parallel=parallelism.pipeline_parallel,
            num_microbatches=parallelism.num_microbatches(global_batch_size),
            schedule=parallelism.pipeline_schedule,
            virtual_stages=parallelism.virtual_pipeline_stages,
        )
        in_flight = schedule.in_flight_microbatches
    else:
        in_flight = max(1, in_flight_microbatches)
    activation_bytes = activation_model.activation_bytes(
        layers_per_stage,
        strategy,
        in_flight_microbatches=in_flight,
    )

    return TrainingMemoryBreakdown(
        parameter_bytes=parameter_bytes,
        gradient_bytes=gradient_bytes,
        optimizer_bytes=optimizer_bytes,
        activation_bytes=activation_bytes,
    )


def inference_memory_breakdown(
    model: TransformerConfig,
    batch_size: int,
    context_len: int,
    precision: Precision = Precision.FP16,
    tensor_parallel: int = 1,
) -> InferenceMemoryBreakdown:
    """Per-device inference memory breakdown (weights + KV-cache + activations)."""
    weights = model_weight_bytes(model, precision=precision, tensor_parallel=tensor_parallel)
    kv = kv_cache_bytes(
        model,
        batch_size=batch_size,
        context_len=context_len,
        precision=precision,
        tensor_parallel=tensor_parallel,
    )
    # Transient activations of the widest layer output (a small term at batch sizes ~1-16).
    activations = (
        batch_size * model.hidden_size * max(1, model.ffn_hidden_size // max(1, tensor_parallel))
        * precision.bytes_per_element
        / model.hidden_size
    )
    return InferenceMemoryBreakdown(weight_bytes=weights, kv_cache_bytes=kv, activation_bytes=activations)


def check_training_fits(
    breakdown: TrainingMemoryBreakdown,
    capacity_bytes: float,
    label: str = "configuration",
) -> None:
    """Raise :class:`MemoryCapacityError` when the footprint exceeds the device memory."""
    if not breakdown.fits(capacity_bytes):
        raise MemoryCapacityError(
            f"{label}: footprint {breakdown.total_bytes / 1e9:.1f} GB exceeds device capacity "
            f"{capacity_bytes / 1e9:.1f} GB"
        )
