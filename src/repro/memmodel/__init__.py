"""Memory-footprint models: activations, recomputation, weights, optimizer, KV-cache."""

from .activations import ActivationModel, RecomputeStrategy
from .footprint import (
    ADAM_STATES_PER_PARAMETER,
    InferenceMemoryBreakdown,
    TrainingMemoryBreakdown,
    check_training_fits,
    inference_memory_breakdown,
    kv_cache_bytes,
    model_weight_bytes,
    training_memory_breakdown,
)

__all__ = [
    "ADAM_STATES_PER_PARAMETER",
    "ActivationModel",
    "InferenceMemoryBreakdown",
    "RecomputeStrategy",
    "TrainingMemoryBreakdown",
    "check_training_fits",
    "inference_memory_breakdown",
    "kv_cache_bytes",
    "model_weight_bytes",
    "training_memory_breakdown",
]
