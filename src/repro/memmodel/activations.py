"""Activation-memory model and recomputation strategies (paper Section 3.3).

Training must keep the forward activations of every layer alive until the
backward pass consumes them, which makes activations the critical memory
bottleneck at large scale.  The per-layer activation sizes follow the
analysis of Korthikanti et al. ("Reducing activation recomputation in large
transformer models"), the same reference the paper validates against.  For
sequence length ``s``, micro-batch ``b``, hidden size ``h``, attention-head
count ``a``, and 2-byte activations, one layer stores

    A_tot = s*b*h * (10 + 24/t) + 5*a*s^2*b / t        bytes   (tensor parallel t)
    A_tot = s*b*h * 34/t        + 5*a*s^2*b / t        bytes   (TP + sequence parallel)

where the ``10*s*b*h`` term is the part tensor parallelism alone cannot shard
(layer-norm inputs, block inputs, and dropout masks) and the ``5*a*s^2*b``
term is the attention-score block (softmax output, attention-dropout mask and
output) that selective recomputation drops.

Three strategies are modeled (Eqs. 1 and 2 of the paper):

* **No recomputation** stores everything: ``A_none = L * A_tot``.
* **Full recomputation** checkpoints layer inputs and replays the forward
  pass during backward: ``A_full = N_ckp * A_inp + L / N_ckp * (A_tot - A_inp)``.
* **Selective recomputation** drops only the memory-hungry but cheap-to-
  recompute attention internals: ``A_sel = L * (A_tot - (A_sm + A_do_mask + A_do_out))``.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig

#: Per-layer activation coefficients (in units of ``s*b*h`` bytes for 2-byte
#: activations), following Korthikanti et al.  ``UNSHARDED`` is the part only
#: sequence parallelism can shard; ``SHARDED`` is what tensor parallelism
#: already divides by ``t``.
ATTENTION_SHARDED_COEFF = 8.0
ATTENTION_UNSHARDED_COEFF = 3.0
MLP_SHARDED_COEFF = 16.0
MLP_UNSHARDED_COEFF = 3.0
LAYERNORM_UNSHARDED_COEFF = 4.0
#: Attention-score activations (softmax output + dropout mask + dropout output)
#: in units of ``a*s^2*b`` bytes; always sharded by the TP degree.
SCORE_COEFF = 5.0
#: Layer-input checkpoint size in units of ``s*b*h`` bytes.
INPUT_COEFF = 2.0


class RecomputeStrategy(enum.Enum):
    """Activation recomputation strategy."""

    NONE = "none"
    SELECTIVE = "selective"
    FULL = "full"

    @classmethod
    def parse(cls, value: "RecomputeStrategy | str") -> "RecomputeStrategy":
        """Accept either an enum member or its (case-insensitive) name."""
        if isinstance(value, RecomputeStrategy):
            return value
        text = str(value).strip().lower()
        for member in cls:
            if member.value == text or member.name.lower() == text:
                return member
        raise ConfigurationError(f"unknown recompute strategy: {value!r}")


@dataclasses.dataclass(frozen=True)
class ActivationModel:
    """Per-layer activation sizes for one micro-batch on one device.

    Attributes:
        model: The transformer architecture.
        micro_batch: Micro-batch size in sequences.
        seq_len: Sequence length.
        tensor_parallel: TP degree (shards the GEMM activations).
        sequence_parallel: Whether SP additionally shards norm/dropout activations.
        precision: Activation precision (2 bytes for mixed-precision training).
    """

    model: TransformerConfig
    micro_batch: int
    seq_len: int
    tensor_parallel: int = 1
    sequence_parallel: bool = False
    precision: Precision = Precision.FP16

    def __post_init__(self) -> None:
        if self.micro_batch < 1 or self.seq_len < 1 or self.tensor_parallel < 1:
            raise ConfigurationError("micro_batch, seq_len and tensor_parallel must be >= 1")

    # -- building blocks -----------------------------------------------------------

    @property
    def _sbh_bytes(self) -> float:
        """The ``s*b*h`` unit expressed in bytes of activation precision.

        The Korthikanti coefficients assume 2-byte activations; scaling by
        ``precision/2`` generalizes them to other activation widths.
        """
        elements = float(self.seq_len) * self.micro_batch * self.model.hidden_size
        return elements * (self.precision.bytes_per_element / 2.0)

    @property
    def _score_unit_bytes(self) -> float:
        """The ``a*s^2*b`` unit expressed in bytes (already divided by TP)."""
        elements = self.model.num_heads * float(self.seq_len) ** 2 * self.micro_batch
        return elements * (self.precision.bytes_per_element / 2.0) / self.tensor_parallel

    @property
    def _tp(self) -> float:
        return float(self.tensor_parallel)

    @property
    def _sp(self) -> float:
        """Sharding factor of the otherwise-unsharded terms (TP degree when SP is on)."""
        return self._tp if self.sequence_parallel else 1.0

    # -- per-layer components ---------------------------------------------------------

    def attention_activation_bytes(self) -> float:
        """Attention-block activations of one layer (``11*s*b*h + 5*a*s^2*b`` unsharded)."""
        sbh = self._sbh_bytes
        return (
            ATTENTION_SHARDED_COEFF * sbh / self._tp
            + ATTENTION_UNSHARDED_COEFF * sbh / self._sp
            + SCORE_COEFF * self._score_unit_bytes
        )

    def mlp_activation_bytes(self) -> float:
        """MLP-block activations of one layer (``19*s*b*h`` unsharded, scaled by the FFN ratio)."""
        sbh = self._sbh_bytes
        # The 16*sbh shardable term assumes ffn = 4h; scale it for other ratios.
        ffn_scale = self.model.ffn_hidden_size / (4.0 * self.model.hidden_size)
        extra = 1.0 if self.model.num_mlp_matrices == 2 else 1.5  # SwiGLU stores gate and up streams
        return (
            MLP_SHARDED_COEFF * ffn_scale * extra * sbh / self._tp
            + MLP_UNSHARDED_COEFF * sbh / self._sp
        )

    def layernorm_activation_bytes(self) -> float:
        """Inputs of the two layer-norms of one layer (``4*s*b*h``)."""
        return LAYERNORM_UNSHARDED_COEFF * self._sbh_bytes / self._sp

    def softmax_activation_bytes(self) -> float:
        """``A_sm``: the softmax output stored for backward (``2*a*s^2*b``)."""
        return 2.0 * self._score_unit_bytes

    def dropout_mask_bytes(self) -> float:
        """``A_do_mask``: the attention-dropout mask (``1*a*s^2*b``)."""
        return 1.0 * self._score_unit_bytes

    def dropout_output_bytes(self) -> float:
        """``A_do_out``: the attention-dropout output (``2*a*s^2*b``)."""
        return 2.0 * self._score_unit_bytes

    def total_activation_bytes_per_layer(self) -> float:
        """``A_tot``: every activation one layer stores without recomputation."""
        return (
            self.attention_activation_bytes()
            + self.mlp_activation_bytes()
            + self.layernorm_activation_bytes()
        )

    def input_activation_bytes_per_layer(self) -> float:
        """``A_inp``: the layer's input hidden state (what a checkpoint keeps)."""
        return INPUT_COEFF * self._sbh_bytes / self._sp

    # -- strategies (Eqs. 1 and 2) -------------------------------------------------------

    def selective_saving_bytes_per_layer(self) -> float:
        """Bytes selective recomputation drops per layer: softmax + dropout mask/output."""
        return self.softmax_activation_bytes() + self.dropout_mask_bytes() + self.dropout_output_bytes()

    def optimal_checkpoint_count(self, layers: int) -> int:
        """Checkpoint count minimizing Eq. 1: ``N = sqrt(L * (A_tot - A_inp) / A_inp)``."""
        a_inp = self.input_activation_bytes_per_layer()
        a_rest = max(self.total_activation_bytes_per_layer() - a_inp, 0.0)
        if a_inp <= 0 or a_rest <= 0:
            return max(1, layers)
        optimum = math.sqrt(layers * a_rest / a_inp)
        return max(1, min(layers, int(round(optimum))))

    def stored_activation_bytes(
        self,
        layers: int,
        strategy: "RecomputeStrategy | str" = RecomputeStrategy.NONE,
        checkpoints: Optional[int] = None,
    ) -> float:
        """Activation bytes that stay alive per in-flight micro-batch.

        For full recomputation only the checkpointed layer inputs persist; for
        the other strategies all retained activations persist until backward.
        """
        strategy = RecomputeStrategy.parse(strategy)
        a_tot = self.total_activation_bytes_per_layer()
        a_inp = self.input_activation_bytes_per_layer()
        if strategy is RecomputeStrategy.NONE:
            return layers * a_tot
        if strategy is RecomputeStrategy.SELECTIVE:
            return layers * (a_tot - self.selective_saving_bytes_per_layer())
        n_ckp = layers if checkpoints is None else max(1, min(layers, checkpoints))
        return n_ckp * a_inp

    def transient_recompute_bytes(
        self,
        layers: int,
        strategy: "RecomputeStrategy | str" = RecomputeStrategy.NONE,
        checkpoints: Optional[int] = None,
    ) -> float:
        """Working set rebuilt while the current checkpoint segment is replayed.

        This is the second term of Eq. 1; it exists only once (for the
        micro-batch currently running backward), not per in-flight micro-batch.
        """
        strategy = RecomputeStrategy.parse(strategy)
        if strategy is not RecomputeStrategy.FULL:
            return 0.0
        a_tot = self.total_activation_bytes_per_layer()
        a_inp = self.input_activation_bytes_per_layer()
        n_ckp = layers if checkpoints is None else max(1, min(layers, checkpoints))
        return (layers / n_ckp) * (a_tot - a_inp)

    def activation_bytes(
        self,
        layers: int,
        strategy: "RecomputeStrategy | str" = RecomputeStrategy.NONE,
        checkpoints: Optional[int] = None,
        in_flight_microbatches: int = 1,
    ) -> float:
        """Total activation memory of ``layers`` layers (Eqs. 1 and 2).

        Args:
            layers: Number of transformer layers resident on the device.
            strategy: Recomputation strategy.
            checkpoints: Number of checkpoints ``N_ckp`` for full
                recomputation; defaults to one checkpoint per layer, the
                Megatron-LM default.
            in_flight_microbatches: Micro-batches whose stored activations are
                simultaneously alive (the pipeline depth for 1F1B schedules).
        """
        stored = self.stored_activation_bytes(layers, strategy, checkpoints)
        transient = self.transient_recompute_bytes(layers, strategy, checkpoints)
        return stored * max(1, in_flight_microbatches) + transient

    def recompute_flops_overhead(self, strategy: "RecomputeStrategy | str") -> float:
        """Fraction of extra forward FLOPs the strategy costs.

        Full recomputation re-runs the forward pass (one extra forward per
        backward, i.e. +100% of forward time); selective recomputation only
        replays the softmax/dropout internals, which is a negligible FLOP
        overhead (the paper: "causes very little computational overhead").
        """
        strategy = RecomputeStrategy.parse(strategy)
        if strategy is RecomputeStrategy.FULL:
            return 1.0
        if strategy is RecomputeStrategy.SELECTIVE:
            return 0.03
        return 0.0

    def summary(self, layers: int) -> Dict[str, float]:
        """Per-strategy totals for ``layers`` layers (bytes)."""
        return {
            "none": self.activation_bytes(layers, RecomputeStrategy.NONE),
            "selective": self.activation_bytes(layers, RecomputeStrategy.SELECTIVE),
            "full": self.activation_bytes(layers, RecomputeStrategy.FULL),
            "per_layer_total": self.total_activation_bytes_per_layer(),
            "per_layer_input": self.input_activation_bytes_per_layer(),
        }
