"""GEMV DRAM-utilization calibration flow (paper Section 4.1 / Fig. 3).

The paper profiles a sweep of GEMV kernels on an A100, records how much of
the peak DRAM bandwidth each achieves, clusters the kernels, and uses the
cluster-wise utilization factors inside the roofline model ("varied DRAM
utilization"); a simplified mode applies one constant factor to every kernel.

We do not have the GPU, so the *measurements* are synthesized by a reference
device model whose DRAM utilization depends smoothly on the streamed weight
volume (small kernels under-utilize the bandwidth, large kernels approach a
plateau) plus deterministic measurement noise.  The calibration flow itself
-- sweep, cluster, fit, and compare varied vs. constant utilization -- is
reproduced end to end, which is the part of Fig. 3 that carries insight.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..hardware.accelerator import AcceleratorSpec, get_accelerator
from ..hardware.datatypes import Precision
from ..perf.gemm import GemmTimeModel, GemvUtilizationModel
from ..validation.metrics import absolute_percentage_error
from ..workload.operators import make_gemv

#: Shape sweep loosely covering the weight matrices found in LLM layers.
DEFAULT_GEMV_SHAPES: Tuple[Tuple[int, int], ...] = (
    (1024, 1024),
    (2048, 2048),
    (4096, 1024),
    (4096, 4096),
    (5120, 5120),
    (6144, 4096),
    (8192, 2048),
    (8192, 8192),
    (11008, 4096),
    (13824, 5120),
    (12288, 12288),
    (16384, 8192),
    (22016, 4096),
    (28672, 8192),
    (32000, 5120),
    (49152, 12288),
)

#: Parameters of the synthetic "true" utilization curve used as measurement stand-in.
TRUE_UTILIZATION_FLOOR = 0.45
TRUE_UTILIZATION_CEILING = 0.82
TRUE_UTILIZATION_KNEE_BYTES = 48.0e6
MEASUREMENT_NOISE = 0.04
#: Fixed software overhead baked into the synthetic measurements.
MEASUREMENT_OVERHEAD_SECONDS = 3.0e-6


@dataclasses.dataclass(frozen=True)
class GemvSample:
    """One profiled (here: synthesized) GEMV kernel.

    Attributes:
        rows, cols: Weight-matrix dimensions (output and input features).
        measured_time: "Measured" execution time in seconds.
        weight_bytes: Bytes of the streamed weight matrix.
    """

    rows: int
    cols: int
    measured_time: float
    weight_bytes: float

    @property
    def shape(self) -> Tuple[int, int]:
        """The (rows, cols) pair."""
        return (self.rows, self.cols)


def true_utilization(weight_bytes: float) -> float:
    """The synthetic ground-truth DRAM utilization as a function of kernel size."""
    if weight_bytes <= 0:
        return TRUE_UTILIZATION_FLOOR
    ramp = 1.0 - math.exp(-weight_bytes / TRUE_UTILIZATION_KNEE_BYTES)
    return TRUE_UTILIZATION_FLOOR + (TRUE_UTILIZATION_CEILING - TRUE_UTILIZATION_FLOOR) * ramp


def synthesize_measurements(
    shapes: Sequence[Tuple[int, int]] = DEFAULT_GEMV_SHAPES,
    accelerator: Optional[AcceleratorSpec] = None,
    precision: Precision = Precision.FP16,
    noise: float = MEASUREMENT_NOISE,
    seed: int = 2024,
) -> List[GemvSample]:
    """Generate the synthetic GEMV "profiling" dataset.

    Each sample's time is the weight-streaming time at the ground-truth
    utilization plus a fixed software overhead, perturbed by multiplicative
    Gaussian noise with a deterministic seed.
    """
    accelerator = accelerator or get_accelerator("A100")
    rng = random.Random(seed)
    dram_bandwidth = accelerator.dram_bandwidth
    samples: List[GemvSample] = []
    for rows, cols in shapes:
        gemv = make_gemv("calibration_gemv", rows=rows, cols=cols, precision=precision)
        weight_bytes = gemv.b_bytes
        utilization = true_utilization(weight_bytes)
        ideal_time = gemv.bytes_total / (dram_bandwidth * utilization)
        noisy = ideal_time * (1.0 + rng.gauss(0.0, noise)) + MEASUREMENT_OVERHEAD_SECONDS
        samples.append(GemvSample(rows=rows, cols=cols, measured_time=max(noisy, 1e-9), weight_bytes=weight_bytes))
    return samples


def _observed_utilization(sample: GemvSample, accelerator: AcceleratorSpec, precision: Precision) -> float:
    """Back out the DRAM utilization a measurement implies."""
    gemv = make_gemv("calibration_gemv", rows=sample.rows, cols=sample.cols, precision=precision)
    effective_time = max(sample.measured_time - MEASUREMENT_OVERHEAD_SECONDS, 1e-9)
    utilization = gemv.bytes_total / (accelerator.dram_bandwidth * effective_time)
    return min(max(utilization, 0.01), 1.0)


def cluster_utilization_factors(
    samples: Sequence[GemvSample],
    accelerator: Optional[AcceleratorSpec] = None,
    precision: Precision = Precision.FP16,
    num_clusters: int = 3,
) -> GemvUtilizationModel:
    """Cluster the profiled kernels by size and fit per-cluster utilization factors.

    The clustering is a one-dimensional quantile split over the streamed
    weight volume (which is what dominates GEMV behaviour); each cluster's
    utilization factor is the mean observed utilization of its members.
    """
    if not samples:
        raise ConfigurationError("cannot calibrate from an empty sample set")
    if num_clusters < 1:
        raise ConfigurationError("num_clusters must be at least 1")
    accelerator = accelerator or get_accelerator("A100")
    ordered = sorted(samples, key=lambda s: s.weight_bytes)
    clusters: List[List[GemvSample]] = []
    chunk = max(1, math.ceil(len(ordered) / num_clusters))
    for start in range(0, len(ordered), chunk):
        clusters.append(ordered[start : start + chunk])
    pairs: List[Tuple[float, float]] = []
    for cluster in clusters:
        lower_bound = cluster[0].weight_bytes if pairs else 0.0
        mean_util = sum(_observed_utilization(s, accelerator, precision) for s in cluster) / len(cluster)
        pairs.append((lower_bound, mean_util))
    constant = sum(_observed_utilization(s, accelerator, precision) for s in ordered) / len(ordered)
    return GemvUtilizationModel.from_pairs(pairs, constant=constant)


@dataclasses.dataclass(frozen=True)
class GemvValidationPoint:
    """One scatter point of the Fig.-3-style validation plot."""

    rows: int
    cols: int
    measured_time: float
    predicted_varied: float
    predicted_constant: float

    @property
    def error_varied_percent(self) -> float:
        """Absolute percentage error of the varied-utilization prediction."""
        return absolute_percentage_error(self.predicted_varied, self.measured_time)

    @property
    def error_constant_percent(self) -> float:
        """Absolute percentage error of the constant-utilization prediction."""
        return absolute_percentage_error(self.predicted_constant, self.measured_time)


@dataclasses.dataclass(frozen=True)
class GemvValidationResult:
    """Outcome of the GEMV validation study (Fig. 3)."""

    points: Tuple[GemvValidationPoint, ...]
    mean_error_varied_percent: float
    mean_error_constant_percent: float
    utilization_model: GemvUtilizationModel

    def as_rows(self) -> List[Dict[str, float]]:
        """Flat rows for table rendering."""
        return [
            {
                "rows": p.rows,
                "cols": p.cols,
                "measured_us": p.measured_time * 1e6,
                "varied_us": p.predicted_varied * 1e6,
                "constant_us": p.predicted_constant * 1e6,
                "err_varied_%": p.error_varied_percent,
                "err_constant_%": p.error_constant_percent,
            }
            for p in self.points
        ]


def run_gemv_validation(
    shapes: Sequence[Tuple[int, int]] = DEFAULT_GEMV_SHAPES,
    accelerator: Optional[AcceleratorSpec] = None,
    precision: Precision = Precision.FP16,
    num_clusters: int = 3,
    constant_utilization: float = 0.78,
    seed: int = 2024,
) -> GemvValidationResult:
    """Run the full Fig.-3 flow: synthesize, calibrate, and compare both modes."""
    accelerator = accelerator or get_accelerator("A100")
    samples = synthesize_measurements(shapes, accelerator=accelerator, precision=precision, seed=seed)
    varied_model = cluster_utilization_factors(samples, accelerator=accelerator, precision=precision, num_clusters=num_clusters)
    varied_gemm_model = GemmTimeModel(accelerator=accelerator, gemv_utilization=varied_model, kernel_overhead=MEASUREMENT_OVERHEAD_SECONDS)
    constant_gemm_model = GemmTimeModel(
        accelerator=accelerator,
        gemv_utilization=GemvUtilizationModel.constant_model(constant_utilization),
        kernel_overhead=MEASUREMENT_OVERHEAD_SECONDS,
    )
    points: List[GemvValidationPoint] = []
    for sample in samples:
        gemv = make_gemv("calibration_gemv", rows=sample.rows, cols=sample.cols, precision=precision)
        points.append(
            GemvValidationPoint(
                rows=sample.rows,
                cols=sample.cols,
                measured_time=sample.measured_time,
                predicted_varied=varied_gemm_model.time(gemv),
                predicted_constant=constant_gemm_model.time(gemv),
            )
        )
    mean_varied = sum(p.error_varied_percent for p in points) / len(points)
    mean_constant = sum(p.error_constant_percent for p in points) / len(points)
    return GemvValidationResult(
        points=tuple(points),
        mean_error_varied_percent=mean_varied,
        mean_error_constant_percent=mean_constant,
        utilization_model=varied_model,
    )
