"""Calibration flows: synthetic GEMV profiling and utilization-factor fitting."""

from .gemv import (
    DEFAULT_GEMV_SHAPES,
    GemvSample,
    GemvValidationPoint,
    GemvValidationResult,
    cluster_utilization_factors,
    run_gemv_validation,
    synthesize_measurements,
    true_utilization,
)

__all__ = [
    "DEFAULT_GEMV_SHAPES",
    "GemvSample",
    "GemvValidationPoint",
    "GemvValidationResult",
    "cluster_utilization_factors",
    "run_gemv_validation",
    "synthesize_measurements",
    "true_utilization",
]
