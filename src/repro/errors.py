"""Exception hierarchy for the repro package.

All exceptions raised intentionally by the framework derive from
:class:`ReproError`, so callers can catch one base class.  More specific
subclasses allow tests and downstream users to distinguish configuration
mistakes from infeasible mappings (e.g. a model that does not fit into the
available device memory).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """An input configuration is inconsistent or out of the supported range."""


class UnknownHardwareError(ConfigurationError):
    """A requested accelerator, memory, or network technology is not in the catalog."""


class UnknownModelError(ConfigurationError):
    """A requested LLM model name is not present in the model zoo."""


class MappingError(ReproError):
    """A parallelization mapping cannot be applied to the given workload/system."""


class MemoryCapacityError(MappingError):
    """The mapped workload does not fit into the per-device memory capacity."""


class SearchError(ReproError):
    """The design-space exploration failed to produce a feasible design point."""
